#pragma once

// A discrete-event cluster-queue simulator with FCFS + EASY backfilling --
// the scheduling regime of the systems behind Fig. 2 (Intrepid et al.).
// The paper *assumes* an affine waiting-time model wait(r) ~ alpha r +
// gamma fitted from logs; this simulator reproduces that relationship from
// first principles: longer requested walltimes backfill less easily, so
// their average wait grows with the request. bench/fig2_queue_sim derives
// the affine fit from a purely simulated log.
//
// Model: `nodes` identical nodes. Jobs arrive over time with a width
// (nodes needed), a requested walltime (the scheduler's planning horizon;
// jobs are killed at it) and an actual runtime <= requested. Scheduling
// points are arrivals and completions. At each point the head of the FCFS
// queue starts if it fits; otherwise it gets a reservation at the earliest
// time enough nodes free (by requested walltimes), and later queued jobs
// may backfill iff they fit now and do not delay that reservation.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dist/distribution.hpp"

namespace sre::sim {

/// One job submitted to the cluster.
struct ClusterJob {
  double submit_time = 0.0;
  std::size_t width = 1;       ///< nodes requested
  double requested = 0.0;      ///< requested walltime
  double actual = 0.0;         ///< true runtime, <= requested
};

/// Scheduling outcome for one job.
struct ScheduledJob {
  std::size_t index = 0;  ///< position in the submitted vector
  ClusterJob job;
  double start_time = 0.0;
  double wait = 0.0;          ///< start - submit
  bool backfilled = false;    ///< started ahead of an earlier-submitted job
};

struct ClusterConfig {
  std::size_t nodes = 409;  ///< the Fig. 2(b) partition size
};

/// Runs the full workload to completion and returns per-job records in
/// submission order. Deterministic.
std::vector<ScheduledJob> simulate_backfill_queue(
    const ClusterConfig& cluster, std::vector<ClusterJob> jobs);

/// Interactive variant: jobs can be injected while the simulation runs --
/// the mechanism behind strategy-driven *resubmission* (a job killed at its
/// requested walltime re-enters the queue with the next reservation of its
/// plan). Completion callbacks observe finished jobs and may submit more.
class BackfillCluster {
 public:
  explicit BackfillCluster(ClusterConfig config);
  ~BackfillCluster();
  BackfillCluster(const BackfillCluster&) = delete;
  BackfillCluster& operator=(const BackfillCluster&) = delete;

  /// Called when a job completes (its nodes free). `now` is the completion
  /// instant; the callback may call submit() with submit_time >= now.
  using CompletionCallback =
      std::function<void(const ScheduledJob& record, double now)>;

  /// Enqueues a job; returns its id (index into records()). Jobs may be
  /// submitted before run() or from within the completion callback.
  std::size_t submit(ClusterJob job);

  /// Runs until no job is queued, running, or pending arrival.
  void run(const CompletionCallback& on_complete = {});

  /// Scheduling records by job id; valid after run().
  [[nodiscard]] const std::vector<ScheduledJob>& records() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Synthetic workload generator: Poisson arrivals, LogNormal-ish widths,
/// a requested-walltime law, and actual runtimes drawn as a uniform
/// fraction of the request (users overestimate).
struct ClusterWorkloadConfig {
  std::size_t jobs = 2000;
  double mean_interarrival = 0.05;   ///< hours between submissions
  std::size_t max_width = 409;
  double mean_width_fraction = 0.2;  ///< mean width as a fraction of nodes
  double min_request = 0.25;         ///< hours
  double max_request = 12.0;         ///< hours
  double min_usage_fraction = 0.5;   ///< actual/requested lower bound
  std::uint64_t seed = 42;
};

std::vector<ClusterJob> synthesize_cluster_workload(
    const ClusterWorkloadConfig& cfg);

}  // namespace sre::sim
