#pragma once

// A fixed-size worker pool with one deque per worker and lock-based work
// stealing. Tasks submitted from outside the pool are spread round-robin
// across the worker deques; tasks submitted from *inside* a pool task land on
// the submitting worker's own deque (cheap, and it keeps recursive
// fan-out local until a thief needs the work). Idle workers scan the other
// deques before sleeping, so a burst submitted to one deque still saturates
// the pool.
//
// The pool also supports *helping*: any thread (worker or not) may call
// try_run_one() to execute a pending task on its own stack. The blocking
// join in sim/parallel.cpp uses this so that nested parallel_for calls
// cannot deadlock — a worker waiting for its chunks runs other chunks
// (including its own) instead of sleeping.
//
// Bookkeeping invariants (all guarded by mutex_ or atomics):
//   * every task is pushed to a deque *before* queued_ is incremented;
//   * every pop is preceded by a reservation (queued_ decrement), so a
//     reserving thread always finds a task when it scans the deques;
//   * pending_ counts submitted-but-unfinished tasks and drives wait_idle().

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sre::sim {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains and joins. Tasks still queued at destruction are executed.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe; callable from within a pool task.
  void submit(std::function<void()> task);

  /// Enqueues a batch in one round of lock traffic and a single wakeup
  /// broadcast. Order across deques interleaves round-robin; relative order
  /// within a deque is the batch order.
  void submit_batch(std::vector<std::function<void()>> tasks);

  /// Runs one pending task on the calling thread, if any is available.
  /// Returns false when every deque is empty. Safe from any thread; the
  /// blocking joins in sim/parallel.cpp use it to help instead of sleeping.
  bool try_run_one();

  /// Blocks until every submitted task has finished (including tasks
  /// submitted by other tasks while waiting). Multiple threads may wait
  /// concurrently.
  void wait_idle();

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool in_worker() const noexcept;

  /// Cumulative count of tasks executed by a worker other than the one
  /// whose deque held them (plus helper-thread pops). Monotone; sampled by
  /// SweepRunner to report steal traffic.
  [[nodiscard]] std::uint64_t steal_count() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Cumulative count of tasks executed.
  [[nodiscard]] std::uint64_t executed_count() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Process-wide pool, lazily constructed with hardware concurrency.
  static ThreadPool& global();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;
  };

  void worker_loop(unsigned index);

  /// Reserves one queued task (queued_ decrement) and pops it, scanning from
  /// `home` first. Pre: caller observed queued_ > 0 under mutex_ and
  /// decremented it. Never fails (see invariants above).
  std::function<void()> take_reserved(unsigned home);

  /// Runs `task` and performs the completion bookkeeping (pending_,
  /// executed_, idle notification).
  void run_task(std::function<void()>& task);

  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t queued_ = 0;   ///< pushed, not yet reserved by a runner
  std::size_t pending_ = 0;  ///< submitted, not yet finished
  bool stopping_ = false;

  std::vector<std::unique_ptr<Worker>> deques_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_deque_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> executed_{0};
};

}  // namespace sre::sim
