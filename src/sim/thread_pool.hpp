#pragma once

// A fixed-size worker pool with a single FIFO queue. The evaluation sweeps
// (brute-force t1 grids, Monte-Carlo batches, per-distribution table rows)
// are embarrassingly parallel, so a simple mutex-protected queue is both
// sufficient and contention-free at the task granularities we use.

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sre::sim {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains and joins. Tasks still queued at destruction are executed.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Process-wide pool, lazily constructed with hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned active_ = 0;
  bool stopping_ = false;
};

}  // namespace sre::sim
