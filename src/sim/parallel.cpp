#include "sim/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

#include "sim/thread_pool.hpp"
#include "stats/summary.hpp"

namespace sre::sim {

namespace {

/// Completion tracker shared by the tasks of one submit_and_join call.
struct Join {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t remaining;
  std::exception_ptr first_error;

  explicit Join(std::size_t n) : remaining(n) {}

  void finish_one(std::exception_ptr error) {
    // Notify *under* the lock: once the waiter observes remaining == 0 it
    // may destroy this Join, so the notifier must be done with it by the
    // time it releases the mutex.
    std::lock_guard lock(mutex);
    if (error && !first_error) first_error = std::move(error);
    if (--remaining == 0) cv.notify_all();
  }
};

struct ChunkPlan {
  std::size_t n_chunks = 0;
  std::size_t chunk_size = 0;
};

/// Worker-count-aware chunking for parallel_for (no reduction, so the
/// decomposition is free to adapt to the pool).
ChunkPlan plan_chunks(std::size_t total, std::size_t grain, unsigned workers) {
  if (total == 0) return {0, 0};
  if (grain == 0) grain = 1;
  // Aim for ~4 chunks per worker for load balance, but never below grain.
  std::size_t target = static_cast<std::size_t>(workers) * 4;
  if (target == 0) target = 1;
  std::size_t chunk = (total + target - 1) / target;
  if (chunk < grain) chunk = grain;
  const std::size_t n = (total + chunk - 1) / chunk;
  return {n, chunk};
}

/// Pool-independent chunking for parallel_sum: a function of (total, grain)
/// only, so the reduction tree — and therefore the rounding — is identical
/// on every pool size and on the serial path.
ChunkPlan plan_sum_chunks(std::size_t total, std::size_t grain) {
  if (total == 0) return {0, 0};
  constexpr std::size_t kSumChunk = 1024;
  const std::size_t chunk = std::max(grain, kSumChunk);
  const std::size_t n = (total + chunk - 1) / chunk;
  return {n, chunk};
}

}  // namespace

void submit_and_join(ThreadPool& pool, std::size_t n,
                     const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  if (n == 1 || pool.size() <= 1) {
    for (std::size_t k = 0; k < n; ++k) task(k);
    return;
  }

  Join join(n);
  std::vector<std::function<void()>> wrapped;
  wrapped.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    wrapped.push_back([&join, &task, k] {
      std::exception_ptr error;
      try {
        task(k);
      } catch (...) {
        error = std::current_exception();
      }
      join.finish_one(std::move(error));
    });
  }
  pool.submit_batch(std::move(wrapped));

  // Help instead of sleeping: run pending pool tasks (possibly our own, or
  // those of a sibling join) so nested joins always make progress.
  for (;;) {
    {
      std::lock_guard lock(join.mutex);
      if (join.remaining == 0) break;
    }
    if (!pool.try_run_one()) {
      std::unique_lock lock(join.mutex);
      join.cv.wait_for(lock, std::chrono::milliseconds(1),
                       [&join] { return join.remaining == 0; });
      if (join.remaining == 0) break;
    }
  }
  if (join.first_error) std::rethrow_exception(join.first_error);
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  if (end <= begin) return;
  const std::size_t total = end - begin;
  const ChunkPlan plan = plan_chunks(total, grain, pool.size());
  if (plan.n_chunks <= 1 || pool.size() <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  submit_and_join(pool, plan.n_chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for(ThreadPool::global(), begin, end, body, grain);
}

double parallel_sum(ThreadPool& pool, std::size_t begin, std::size_t end,
                    const std::function<double(std::size_t)>& f,
                    std::size_t grain) {
  if (end <= begin) return 0.0;
  const std::size_t total = end - begin;
  const ChunkPlan plan = plan_sum_chunks(total, grain);

  std::vector<double> partial(plan.n_chunks, 0.0);
  const auto sum_chunk = [&](std::size_t c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    stats::KahanSum sum;
    for (std::size_t i = lo; i < hi; ++i) sum.add(f(i));
    partial[c] = sum.value();
  };
  if (plan.n_chunks <= 1 || pool.size() <= 1) {
    for (std::size_t c = 0; c < plan.n_chunks; ++c) sum_chunk(c);
  } else {
    parallel_for(pool, 0, plan.n_chunks, sum_chunk);
  }

  stats::KahanSum sum;
  for (const double p : partial) sum.add(p);
  return sum.value();
}

double parallel_sum(std::size_t begin, std::size_t end,
                    const std::function<double(std::size_t)>& f,
                    std::size_t grain) {
  return parallel_sum(ThreadPool::global(), begin, end, f, grain);
}

}  // namespace sre::sim
