#include "sim/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

#include "sim/thread_pool.hpp"
#include "stats/summary.hpp"

namespace sre::sim {

namespace {

/// Count-down latch compatible with C++17-era toolchains.
class Latch {
 public:
  explicit Latch(std::size_t count) : count_(count) {}

  void count_down() {
    std::lock_guard lock(mutex_);
    if (--count_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t count_;
};

struct ChunkPlan {
  std::size_t n_chunks = 0;
  std::size_t chunk_size = 0;
};

ChunkPlan plan_chunks(std::size_t total, std::size_t grain, unsigned workers) {
  if (total == 0) return {0, 0};
  if (grain == 0) grain = 1;
  // Aim for ~4 chunks per worker for load balance, but never below grain.
  std::size_t target = static_cast<std::size_t>(workers) * 4;
  if (target == 0) target = 1;
  std::size_t chunk = (total + target - 1) / target;
  if (chunk < grain) chunk = grain;
  const std::size_t n = (total + chunk - 1) / chunk;
  return {n, chunk};
}

}  // namespace

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  if (end <= begin) return;
  const std::size_t total = end - begin;
  ThreadPool& pool = ThreadPool::global();
  const ChunkPlan plan = plan_chunks(total, grain, pool.size());
  if (plan.n_chunks <= 1 || pool.size() <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  Latch latch(plan.n_chunks);
  std::mutex err_mutex;
  std::exception_ptr first_error;

  for (std::size_t c = 0; c < plan.n_chunks; ++c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    pool.submit([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      latch.count_down();
    });
  }
  latch.wait();
  if (first_error) std::rethrow_exception(first_error);
}

double parallel_sum(std::size_t begin, std::size_t end,
                    const std::function<double(std::size_t)>& f,
                    std::size_t grain) {
  if (end <= begin) return 0.0;
  const std::size_t total = end - begin;
  ThreadPool& pool = ThreadPool::global();
  const ChunkPlan plan = plan_chunks(total, grain, pool.size());
  if (plan.n_chunks <= 1 || pool.size() <= 1) {
    stats::KahanSum sum;
    for (std::size_t i = begin; i < end; ++i) sum.add(f(i));
    return sum.value();
  }

  std::vector<double> partial(plan.n_chunks, 0.0);
  parallel_for(0, plan.n_chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    stats::KahanSum sum;
    for (std::size_t i = lo; i < hi; ++i) sum.add(f(i));
    partial[c] = sum.value();
  });
  stats::KahanSum sum;
  for (const double p : partial) sum.add(p);
  return sum.value();
}

}  // namespace sre::sim
