#include "sim/event_sim.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "sim/rng.hpp"
#include "stats/error.hpp"
#include "stats/summary.hpp"

namespace sre::sim {

PlatformSimulator::PlatformSimulator(std::vector<double> reservations,
                                     ReservationCostParams costs)
    : reservations_(std::move(reservations)), costs_(costs) {
  assert(!reservations_.empty());
  for (std::size_t i = 0; i < reservations_.size(); ++i) {
    assert(reservations_[i] > 0.0);
    assert(i == 0 || reservations_[i] > reservations_[i - 1]);
  }
}

void PlatformSimulator::set_wait_time_model(
    std::function<double(double)> wait_of_request) {
  wait_of_request_ = std::move(wait_of_request);
}

JobOutcome PlatformSimulator::run_job(double execution_time,
                                      std::vector<AttemptRecord>* trace) const {
  JobOutcome out;
  for (const double reserved : reservations_) {
    AttemptRecord rec;
    rec.reserved = reserved;
    rec.used = std::min(reserved, execution_time);
    rec.wait = wait_of_request_ ? wait_of_request_(reserved) : 0.0;
    rec.success = execution_time <= reserved;
    rec.cost = costs_.alpha * reserved + costs_.beta * rec.used + costs_.gamma;

    ++out.attempts;
    out.total_cost += rec.cost;
    out.turnaround += rec.wait + rec.used;
    if (!rec.success) out.wasted_time += rec.used;
    if (trace) trace->push_back(rec);
    if (rec.success) {
      out.completed = true;
      break;
    }
  }
  return out;
}

JobOutcome PlatformSimulator::run_job_with_faults(
    double execution_time, const ScenarioFaults& faults,
    std::vector<AttemptRecord>* trace) const {
  if (!faults.enabled()) return run_job(execution_time, trace);

  JobOutcome out;
  // A storm of launch failures / interruptions could retry one level
  // forever; bound the replay and surface exhaustion as the typed injected
  // fault it is.
  constexpr std::size_t kMaxAttempts = 100000;
  std::uint64_t attempt_idx = 0;

  for (std::size_t level = 0; level < reservations_.size();) {
    if (out.attempts >= kMaxAttempts) {
      throw ScenarioError(ErrorCode::kInjectedFault,
                          "fault storm exhausted the attempt budget");
    }
    const double reserved = reservations_[level];
    const double wait = wait_of_request_ ? wait_of_request_(reserved) : 0.0;

    AttemptRecord rec;
    rec.reserved = reserved;
    rec.wait = wait;
    ++out.attempts;
    out.turnaround += wait;

    if (faults.launch_fails(attempt_idx)) {
      // The submission bounced: the fixed overhead is paid, no machine time
      // runs, and the same reservation is resubmitted.
      rec.cost = costs_.gamma;
      out.total_cost += rec.cost;
      if (trace) trace->push_back(rec);
      ++attempt_idx;
      continue;
    }

    const double run = std::min(reserved, execution_time);
    const double interrupt = faults.interruption_after(attempt_idx);
    ++attempt_idx;
    if (interrupt < run) {
      // Preempted mid-reservation: the partial run is lost and wasted, the
      // reservation was never proven too short, so it is retried.
      rec.used = interrupt;
      rec.cost =
          costs_.alpha * reserved + costs_.beta * interrupt + costs_.gamma;
      out.total_cost += rec.cost;
      out.turnaround += interrupt;
      out.wasted_time += interrupt;
      if (trace) trace->push_back(rec);
      continue;
    }

    rec.used = run;
    rec.success = execution_time <= reserved;
    rec.cost = costs_.alpha * reserved + costs_.beta * run + costs_.gamma;
    out.total_cost += rec.cost;
    out.turnaround += run;
    if (trace) trace->push_back(rec);
    if (rec.success) {
      out.completed = true;
      return out;
    }
    out.wasted_time += run;
    ++level;
  }
  return out;
}

CheckpointingSimulator::CheckpointingSimulator(
    std::vector<double> reservations, ReservationCostParams costs,
    double checkpoint_cost, double restart_cost)
    : reservations_(std::move(reservations)),
      costs_(costs),
      checkpoint_cost_(checkpoint_cost),
      restart_cost_(restart_cost) {
  assert(!reservations_.empty());
  assert(checkpoint_cost >= 0.0 && restart_cost >= 0.0);
  for (std::size_t i = 0; i < reservations_.size(); ++i) {
    const double restore = (i == 0) ? 0.0 : restart_cost;
    assert(reservations_[i] > restore + checkpoint_cost &&
           "reservation leaves no room for work");
  }
}

JobOutcome CheckpointingSimulator::run_job(
    double execution_time, std::vector<AttemptRecord>* trace) const {
  JobOutcome out;
  double done = 0.0;  // work completed and checkpointed so far
  for (std::size_t i = 0; i < reservations_.size(); ++i) {
    const double reserved = reservations_[i];
    const double restore = (i == 0) ? 0.0 : restart_cost_;
    const double window = reserved - restore - checkpoint_cost_;
    const double remaining = execution_time - done;

    AttemptRecord rec;
    rec.reserved = reserved;
    rec.success = remaining <= window;
    if (rec.success) {
      rec.used = restore + remaining;
    } else {
      rec.used = reserved;  // restore + window of work + checkpoint
      done += window;
    }
    rec.cost =
        costs_.alpha * reserved + costs_.beta * rec.used + costs_.gamma;

    ++out.attempts;
    out.total_cost += rec.cost;
    out.turnaround += rec.used;
    if (!rec.success) {
      // Restore and checkpoint time is overhead; the work itself is banked.
      out.wasted_time += restore + checkpoint_cost_;
    }
    if (trace) trace->push_back(rec);
    if (rec.success) {
      out.completed = true;
      break;
    }
  }
  return out;
}

PreemptingSimulator::PreemptingSimulator(std::vector<double> reservations,
                                         ReservationCostParams costs,
                                         double preemption_rate)
    : reservations_(std::move(reservations)),
      costs_(costs),
      rate_(preemption_rate) {
  assert(!reservations_.empty() && preemption_rate >= 0.0);
  for (std::size_t i = 0; i < reservations_.size(); ++i) {
    assert(reservations_[i] > 0.0);
    assert(i == 0 || reservations_[i] > reservations_[i - 1]);
  }
}

JobOutcome PreemptingSimulator::run_job(double execution_time,
                                        Rng& rng) const {
  JobOutcome out;
  std::exponential_distribution<double> preemption(rate_ > 0.0 ? rate_ : 1.0);
  constexpr std::size_t kMaxAttempts = 200000;  // runaway guard

  std::size_t level = 0;
  double reserved = reservations_.front();
  while (out.attempts < kMaxAttempts) {
    reserved = (level < reservations_.size())
                   ? reservations_[level]
                   : reserved * 2.0;
    // Geometric retries at this level until a run completes.
    for (;;) {
      if (out.attempts >= kMaxAttempts) return out;
      ++out.attempts;
      const double run = std::min(reserved, execution_time);
      const double interrupt =
          (rate_ > 0.0) ? preemption(rng)
                        : std::numeric_limits<double>::infinity();
      if (interrupt < run) {
        // Preempted: the partial run is lost, retry the same length.
        out.total_cost += costs_.alpha * reserved +
                          costs_.beta * interrupt + costs_.gamma;
        out.turnaround += interrupt;
        out.wasted_time += interrupt;
        continue;
      }
      out.total_cost +=
          costs_.alpha * reserved + costs_.beta * run + costs_.gamma;
      out.turnaround += run;
      if (execution_time <= reserved) {
        out.completed = true;
        return out;
      }
      out.wasted_time += run;  // timed out: the work restarts from scratch
      break;
    }
    ++level;
  }
  return out;
}

PlatformSimulator::BatchStats PlatformSimulator::run_batch(
    const dist::Distribution& d, std::size_t n_jobs, std::uint64_t seed) const {
  BatchStats stats;
  stats.jobs = n_jobs;
  sre::stats::OnlineMoments cost, attempts, waste, turnaround;
  Rng rng = make_rng(seed);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    const double t = d.sample(rng);
    const JobOutcome out = run_job(t);
    if (!out.completed) ++stats.incomplete;
    cost.add(out.total_cost);
    attempts.add(static_cast<double>(out.attempts));
    waste.add(out.wasted_time);
    turnaround.add(out.turnaround);
  }
  if (n_jobs > 0) {
    stats.mean_cost = cost.mean();
    stats.mean_attempts = attempts.mean();
    stats.mean_waste = waste.mean();
    stats.mean_turnaround = turnaround.mean();
    stats.max_cost = cost.max();
  }
  return stats;
}

}  // namespace sre::sim
