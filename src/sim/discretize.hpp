#pragma once

// Truncation and discretization of continuous distributions (Section 4.2.1).
// An unbounded law is first truncated at b = Q(1 - epsilon); the interval
// [a, b] is then sampled into n (value, probability) pairs by one of the two
// schemes of the paper:
//   EQUAL-PROBABILITY: v_i = Q(i * F(b)/n),       f_i = F(b)/n
//   EQUAL-TIME:        v_i = a + i * (b - a)/n,   f_i = F(v_i) - F(v_{i-1})
// The resulting mass sums to F(b) = 1 - epsilon; DiscreteDistribution
// renormalizes, which leaves the DP-optimal sequence unchanged.

#include "dist/discrete.hpp"
#include "dist/distribution.hpp"
#include "dist/tabulated_cdf.hpp"

namespace sre::sim {

enum class DiscretizationScheme {
  kEqualProbability,
  kEqualTime,
};

/// Printable scheme name ("Equal-probability" / "Equal-time").
const char* to_string(DiscretizationScheme scheme) noexcept;

/// Inner solver for the Theorem 5 dynamic program on the discretized law.
///  * kReference: the O(n^2) table fill — the correctness oracle.
///  * kDivideAndConquer: monotone row-minima (the optimal split index is
///    nondecreasing in the row, a quadrangle-inequality consequence of the
///    transition being affine in the suffix mass), O(n log n). Byte-identical
///    output to kReference — tests/test_dp_differential.cpp is the gate.
enum class DpVariant {
  kReference,
  kDivideAndConquer,
};

/// Printable variant name ("reference-n2" / "divide-and-conquer").
const char* to_string(DpVariant variant) noexcept;

struct DiscretizationOptions {
  std::size_t n = 1000;    ///< number of samples; the paper uses 1000
  double epsilon = 1e-7;   ///< discarded tail quantile; the paper uses 1e-7
  DiscretizationScheme scheme = DiscretizationScheme::kEqualProbability;
  /// DP used on the discretized instance. The fast path is the default; it
  /// must stay byte-identical to the reference, so flipping this only
  /// changes solve latency, never output.
  DpVariant dp_variant = DpVariant::kDivideAndConquer;
};

/// b = Q(1 - epsilon) for unbounded support, else the support's upper end.
double truncation_point(const dist::Distribution& d, double epsilon);

/// Discretizes `d` per `opts`. Duplicate support points (possible when a
/// quantile plateaus) are merged; zero-probability points are kept, as the
/// dynamic program tolerates them.
///
/// When `tab` is non-null it serves the grid's CDF/quantile evaluations:
/// a table built for the same distribution with matching (n, epsilon) is
/// read directly (all hits, no distribution calls); any other table is
/// consulted point-by-point and falls back to the distribution on misses.
/// The output is byte-identical with or without a table.
dist::DiscreteDistribution discretize(const dist::Distribution& d,
                                      const DiscretizationOptions& opts,
                                      const dist::TabulatedCdf* tab = nullptr);

}  // namespace sre::sim
