#include "sim/cancel.hpp"

#include <string>

#include "stats/error.hpp"

namespace sre::sim {

bool CancelToken::expired() const noexcept {
  return state_ != nullptr && state_->has_deadline &&
         std::chrono::steady_clock::now() >= state_->deadline;
}

void CancelToken::check(const char* where) const {
  if (state_ == nullptr) return;
  const std::string at = (where != nullptr) ? std::string(" in ") + where : "";
  if (state_->cancelled.load(std::memory_order_relaxed)) {
    throw ScenarioError(ErrorCode::kCancelled, "cancellation requested" + at);
  }
  if (state_->has_deadline &&
      std::chrono::steady_clock::now() >= state_->deadline) {
    throw ScenarioError(ErrorCode::kTimeout, "scenario deadline expired" + at);
  }
}

CancelSource::CancelSource() : state_(std::make_shared<detail::CancelState>()) {}

CancelSource CancelSource::with_deadline(double seconds) {
  CancelSource src;
  src.state_->has_deadline = true;
  src.state_->deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  return src;
}

CancelSource CancelSource::at_deadline(
    std::chrono::steady_clock::time_point when) {
  CancelSource src;
  src.state_->has_deadline = true;
  src.state_->deadline = when;
  return src;
}

}  // namespace sre::sim
