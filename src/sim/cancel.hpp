#pragma once

// Cooperative cancellation with optional deadlines. A CancelSource owns the
// shared flag (and, optionally, a steady-clock deadline); CancelTokens are
// cheap copyable views that long-running inner loops poll. Cancellation is
// *cooperative*: nothing is interrupted, the loop notices at its next
// check() and unwinds with a typed ScenarioError (kCancelled for an explicit
// request, kTimeout for an expired deadline), which the sweep resilience
// layer records without poisoning sibling scenarios.
//
// A default-constructed token is inert: armed() is false and check() is a
// single pointer test, so APIs can take a CancelToken by value with zero
// cost for callers that never cancel. Deadline checks read the steady clock,
// so hot loops amortize them over a *work budget* — a fixed count of inner
// evaluations (e.g. kDpCancelPollBudget transition evaluations in
// core/heuristics/dp_discretization.cpp) rather than an outer-loop stride,
// which keeps the polling interval bounded even when per-iteration work
// varies by orders of magnitude. Simpler fixed-work loops (core/recurrence.cpp,
// sim/monte_carlo.cpp) still stride every ~64 iterations.

#include <atomic>
#include <chrono>
#include <memory>

namespace sre::sim {

namespace detail {
struct CancelState {
  std::atomic<bool> cancelled{false};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
};
}  // namespace detail

/// Lightweight view polled by workers. Copy freely; all copies observe the
/// same source.
class CancelToken {
 public:
  /// Inert token: never cancels, never expires.
  CancelToken() = default;

  /// True when connected to a CancelSource (i.e. cancellation is possible).
  [[nodiscard]] bool armed() const noexcept { return state_ != nullptr; }

  /// True once the source requested cancellation.
  [[nodiscard]] bool cancel_requested() const noexcept {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_relaxed);
  }

  /// True once the deadline (if any) has passed. Reads the steady clock.
  [[nodiscard]] bool expired() const noexcept;

  /// Throws ScenarioError(kCancelled) on a cancellation request or
  /// ScenarioError(kTimeout) on an expired deadline; otherwise returns.
  /// `where` names the checking loop in the error message (may be null).
  void check(const char* where = nullptr) const;

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const detail::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const detail::CancelState> state_;
};

/// Owner of the cancellation state for one scenario attempt.
class CancelSource {
 public:
  CancelSource();

  /// A source whose tokens expire `seconds` from now (steady clock).
  static CancelSource with_deadline(double seconds);

  /// A source whose tokens expire at an absolute steady-clock instant. The
  /// srv:: request path computes each request's deadline once at admission
  /// and threads the *same* instant through queueing, batching, and the
  /// solver, so time spent waiting in the queue counts against the
  /// request's budget rather than resetting it.
  static CancelSource at_deadline(std::chrono::steady_clock::time_point when);

  /// Requests cooperative cancellation; idempotent, thread-safe.
  void request_cancel() noexcept {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] CancelToken token() const noexcept {
    return CancelToken(state_);
  }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

}  // namespace sre::sim
