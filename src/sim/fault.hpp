#pragma once

// Deterministic fault injection. The paper's whole premise is that
// platforms kill jobs that outrun their reservations; this module simulates
// the platform failing *us* — launch failures, mid-reservation
// interruptions (the spot regime of core/preemption and the checkpoint
// extensions), injected solver exceptions, and artificial latency — so the
// resilience layer in sim/sweep.hpp can be exercised and *proved* instead
// of trusted.
//
// Determinism contract: every decision is a pure function of
// (plan seed, scenario id, attempt, stream), derived through SplitMix64
// exactly like sim::substream_seed. Two runs with the same FaultSpec agree
// bit-for-bit on which scenarios fault and when, regardless of thread count
// or scheduling order — tests/test_fault_injection.cpp pins this, and the
// chaos CI job compares per-class failure counts against the plan.

#include <cstdint>
#include <limits>

#include "sim/cancel.hpp"

namespace sre::sim {

/// Chaos knobs. All probabilities in [0, 1]; 0 everywhere = no injection.
struct FaultSpec {
  std::uint64_t seed = 0;  ///< master seed (scenario streams derive from it)

  /// Per-attempt probability that the scenario's solver "crashes"
  /// (a ScenarioError(kInjectedFault) is thrown before evaluation).
  double solver_exception_prob = 0.0;
  /// Injection applies only to attempts < this bound — set it to N with
  /// probability 1.0 to build "fails N times, then succeeds on retry N"
  /// scenarios deterministically.
  int solver_exception_attempts = std::numeric_limits<int>::max();

  /// Per-attempt probability that a reservation launch fails (the attempt
  /// burns its fixed overhead, no machine time, and is retried).
  double launch_failure_prob = 0.0;

  /// Rate of mid-reservation interruptions: during an attempt an
  /// interruption arrives after Exp(rate) machine time (0 = never).
  double interruption_rate = 0.0;

  /// Artificial latency injected before a scenario evaluates, with this
  /// per-attempt probability / duration. Combined with a deadline it makes
  /// timeouts reproducible in tests.
  double latency_prob = 0.0;
  double latency_seconds = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return solver_exception_prob > 0.0 || launch_failure_prob > 0.0 ||
           interruption_rate > 0.0 || latency_prob > 0.0;
  }

  /// Reads the chaos environment knobs: SRE_FAULT_SEED, SRE_FAULT_RATE
  /// (solver exception probability), SRE_FAULT_LAUNCH, SRE_FAULT_INTERRUPT,
  /// SRE_FAULT_LATENCY_PROB / SRE_FAULT_LATENCY_S. Unset variables keep the
  /// defaults above (everything off).
  static FaultSpec from_env();
};

/// The deterministic fault view of one scenario. Decisions are random-access
/// by (attempt, stream): no hidden iterator state, so simulators may query
/// attempts in any order and replays always agree.
class ScenarioFaults {
 public:
  ScenarioFaults() = default;  ///< no faults
  ScenarioFaults(const FaultSpec& spec, std::uint64_t scenario_id);

  [[nodiscard]] bool enabled() const noexcept { return spec_.enabled(); }

  /// True when the solver-exception fault fires on this attempt.
  [[nodiscard]] bool solver_fault(int attempt) const noexcept;

  /// Latency (seconds) injected before this attempt evaluates; 0 = none.
  [[nodiscard]] double latency(int attempt) const noexcept;

  /// True when reservation launch `attempt` (a global per-job attempt
  /// counter) fails.
  [[nodiscard]] bool launch_fails(std::uint64_t attempt) const noexcept;

  /// Machine time until the interruption hitting launch `attempt`
  /// (Exp(interruption_rate) draw); +infinity when interruptions are off.
  [[nodiscard]] double interruption_after(std::uint64_t attempt) const noexcept;

  /// Throws ScenarioError(kInjectedFault) when the solver-exception fault
  /// fires on `attempt`; applies injected latency (a sleep) and then polls
  /// `cancel`, so a latency fault can surface as a typed timeout. Call at
  /// the top of a scenario attempt.
  void inject_scenario_entry(int attempt, const CancelToken& cancel) const;

 private:
  FaultSpec spec_{};
  std::uint64_t scenario_seed_ = 0;
};

/// A seeded campaign-wide plan: hands out the per-scenario fault views.
class FaultPlan {
 public:
  FaultPlan() = default;  ///< disabled plan: every scenario is fault-free
  explicit FaultPlan(FaultSpec spec) : spec_(spec) {}

  [[nodiscard]] bool enabled() const noexcept { return spec_.enabled(); }
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] ScenarioFaults for_scenario(std::uint64_t scenario_id) const {
    return ScenarioFaults(spec_, scenario_id);
  }

 private:
  FaultSpec spec_{};
};

}  // namespace sre::sim
