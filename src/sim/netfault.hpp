#pragma once

// Deterministic *network* fault injection — the wire-level sibling of
// sim/fault.hpp's solver chaos. A NetFaultSpec describes the fault classes
// and rates (connection refusal, accept-time drops, mid-read/mid-write
// resets, short reads/writes, per-op delays); a NetFaultPlan hands out
// per-connection views whose every decision is a pure function of
// (seed, connection stream, fault class, op index). Two runs with the same
// seed therefore inject the same schedule — which op of which connection
// resets — regardless of thread interleaving, and a chaos failure seen in
// CI replays locally from the seed alone.
//
// The knobs extend the SRE_FAULT_* family (from_env):
//
//   SRE_FAULT_NET_SEED         master seed (0 = default stream)
//   SRE_FAULT_NET_REFUSE       P(client connect() attempt is refused)
//   SRE_FAULT_NET_ACCEPT_DROP  P(server drops a connection at accept)
//   SRE_FAULT_NET_RESET_READ   P(a read op fails with ECONNRESET)
//   SRE_FAULT_NET_RESET_WRITE  P(a write op fails with ECONNRESET)
//   SRE_FAULT_NET_SHORT_READ   P(a read op delivers a truncated chunk)
//   SRE_FAULT_NET_SHORT_WRITE  P(a write op accepts a truncated chunk)
//   SRE_FAULT_NET_DELAY_PROB   P(an op sleeps first)
//   SRE_FAULT_NET_DELAY_S      the sleep, in seconds
//
// All probabilities default to 0 (disabled). Consumers: srv::ChaosSocket
// wraps both sides' fds with a NetConnFaults view; srv::EventLoop applies
// accept_dropped() at its accept seam; srv::Client applies
// connect_refused() before dialing. Stream-id convention: the server uses
// its connection ids (which start at srv::EventLoop's kFirstConnId), the
// client offsets its own connection index by NetFaultPlan::kClientStreamBase
// — so a single in-process chaos run (loadgen) injects independent
// schedules on the two sides of every socket.

#include <cstdint>

namespace sre::sim {

struct NetFaultSpec {
  std::uint64_t seed = 0;
  double connect_refuse_prob = 0.0;
  double accept_drop_prob = 0.0;
  double read_reset_prob = 0.0;
  double write_reset_prob = 0.0;
  double short_read_prob = 0.0;
  double short_write_prob = 0.0;
  double delay_prob = 0.0;
  double delay_seconds = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return connect_refuse_prob > 0.0 || accept_drop_prob > 0.0 ||
           read_reset_prob > 0.0 || write_reset_prob > 0.0 ||
           short_read_prob > 0.0 || short_write_prob > 0.0 ||
           (delay_prob > 0.0 && delay_seconds > 0.0);
  }

  /// Reads the SRE_FAULT_NET_* knobs; unset variables keep the defaults.
  [[nodiscard]] static NetFaultSpec from_env();
};

/// One connection's fault schedule. Every query is random-access in the op
/// index (reads and writes count their ops independently), so decisions
/// replay identically whatever order the socket layer asks in.
class NetConnFaults {
 public:
  NetConnFaults() = default;
  NetConnFaults(const NetFaultSpec& spec, std::uint64_t conn_stream) noexcept;

  [[nodiscard]] bool enabled() const noexcept { return spec_.enabled(); }

  /// True when connect attempt `attempt` (0-based) should be refused.
  [[nodiscard]] bool connect_refused(std::uint64_t attempt) const noexcept;
  /// True when the server should drop this connection at accept time.
  [[nodiscard]] bool accept_dropped() const noexcept;
  /// True when read op `op` should fail with an injected ECONNRESET.
  [[nodiscard]] bool read_reset(std::uint64_t op) const noexcept;
  /// True when write op `op` should fail with an injected ECONNRESET.
  [[nodiscard]] bool write_reset(std::uint64_t op) const noexcept;
  /// Fraction (0, 1] of the requested bytes read op `op` may deliver;
  /// 1.0 = not shortened. Never rounds to zero bytes (the wrapper clamps
  /// to >= 1), so a short read is indistinguishable from TCP segmentation.
  [[nodiscard]] double short_read_fraction(std::uint64_t op) const noexcept;
  /// Fraction (0, 1] of the requested bytes write op `op` may accept.
  [[nodiscard]] double short_write_fraction(std::uint64_t op) const noexcept;
  /// Injected latency (seconds) before op `op`; 0 = none.
  [[nodiscard]] double delay_seconds(std::uint64_t op) const noexcept;

 private:
  NetFaultSpec spec_{};
  std::uint64_t conn_seed_ = 0;
};

/// The per-run plan: spec plus the seed; connections get independent
/// substreams keyed by their stream id.
class NetFaultPlan {
 public:
  /// Client-side streams live far above any realistic server conn-id range
  /// so one in-process run never aliases the two sides' schedules.
  static constexpr std::uint64_t kClientStreamBase = 1ull << 32;

  NetFaultPlan() = default;
  explicit NetFaultPlan(NetFaultSpec spec) noexcept : spec_(spec) {}

  [[nodiscard]] bool enabled() const noexcept { return spec_.enabled(); }
  [[nodiscard]] const NetFaultSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] NetConnFaults for_connection(
      std::uint64_t conn_stream) const noexcept {
    return NetConnFaults(spec_, conn_stream);
  }

 private:
  NetFaultSpec spec_{};
};

}  // namespace sre::sim
