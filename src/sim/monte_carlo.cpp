#include "sim/monte_carlo.hpp"

#include <algorithm>
#include <vector>

#include "sim/parallel.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"
#include "stats/summary.hpp"

namespace sre::sim {

MonteCarloResult estimate_expectation(const dist::Distribution& d,
                                      const std::function<double(double)>& g,
                                      const MonteCarloOptions& opts) {
  const std::size_t n = opts.samples;
  if (n == 0) return {};
  const std::size_t chunk = (opts.chunk == 0) ? 256 : opts.chunk;
  const std::size_t n_chunks = (n + chunk - 1) / chunk;

  // One accumulator per chunk, merged in chunk order for determinism.
  std::vector<stats::OnlineMoments> partial(n_chunks);
  const auto run_chunk = [&](std::size_t c) {
    opts.cancel.check("sim.monte_carlo");
    Rng rng = make_rng(substream_seed(opts.seed, c));
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    stats::OnlineMoments acc;
    if (opts.antithetic) {
      std::uniform_real_distribution<double> u01(0.0, 1.0);
      for (std::size_t i = lo; i < hi; i += 2) {
        const double u = u01(rng);
        acc.add(g(d.quantile(u)));
        if (i + 1 < hi) acc.add(g(d.quantile(1.0 - u)));
      }
    } else {
      for (std::size_t i = lo; i < hi; ++i) acc.add(g(d.sample(rng)));
    }
    partial[c] = acc;
  };

  if (opts.parallel) {
    ThreadPool& pool = opts.pool != nullptr ? *opts.pool : ThreadPool::global();
    parallel_for(pool, 0, n_chunks, run_chunk);
  } else {
    for (std::size_t c = 0; c < n_chunks; ++c) run_chunk(c);
  }

  stats::OnlineMoments total;
  for (const auto& p : partial) total.merge(p);
  return MonteCarloResult{total.mean(), total.standard_error(), total.count()};
}

}  // namespace sre::sim
