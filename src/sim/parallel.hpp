#pragma once

// Blocking data-parallel loops on top of the ThreadPool. Exceptions thrown by
// the body are captured and rethrown on the calling thread (first captured
// one wins). While blocked, the calling thread *helps*: it executes pending
// pool tasks instead of sleeping, so these joins may be nested arbitrarily
// (parallel_for inside a pool task inside parallel_for) without deadlock.
//
// Determinism contract:
//   * parallel_for makes no ordering promises between iterations;
//   * parallel_sum is bit-deterministic: the chunk decomposition depends
//     only on (begin, end, grain) — never on the pool size — and partial
//     sums are combined in chunk order regardless of completion order. The
//     same call therefore returns the same double on a 1-, 2- or 64-thread
//     pool, and on the serial fallback path.

#include <cstddef>
#include <functional>

namespace sre::sim {

class ThreadPool;

/// Submits task(k) for k in [0, n) to `pool` and blocks until all complete,
/// helping with pending pool tasks while waiting. The first exception thrown
/// by any task is rethrown here after every task has finished.
void submit_and_join(ThreadPool& pool, std::size_t n,
                     const std::function<void(std::size_t)>& task);

/// Runs body(i) for i in [begin, end) across `pool`, splitting the range
/// into contiguous chunks of at least `grain` iterations. Blocks until
/// every iteration has completed.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// parallel_for on the process-global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Parallel sum reduction of f(i) over [begin, end). Bit-deterministic for a
/// fixed (begin, end, grain) — see the contract above.
double parallel_sum(ThreadPool& pool, std::size_t begin, std::size_t end,
                    const std::function<double(std::size_t)>& f,
                    std::size_t grain = 1);

/// parallel_sum on the process-global pool.
double parallel_sum(std::size_t begin, std::size_t end,
                    const std::function<double(std::size_t)>& f,
                    std::size_t grain = 1);

}  // namespace sre::sim
