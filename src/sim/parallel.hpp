#pragma once

// Blocking data-parallel loops on top of the ThreadPool. Exceptions thrown by
// the body are captured and rethrown on the calling thread (first one wins).

#include <cstddef>
#include <functional>

namespace sre::sim {

/// Runs body(i) for i in [begin, end) across the global pool, splitting the
/// range into contiguous chunks of at least `grain` iterations. Blocks until
/// every iteration has completed.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Parallel sum reduction of f(i) over [begin, end). Deterministic: partial
/// sums are combined in chunk order regardless of completion order.
double parallel_sum(std::size_t begin, std::size_t end,
                    const std::function<double(std::size_t)>& f,
                    std::size_t grain = 1);

}  // namespace sre::sim
