#include "sim/rng.hpp"

namespace sre::sim {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng make_rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  // Feed several scrambled words into the Mersenne Twister state.
  std::seed_seq seq{splitmix64(state), splitmix64(state), splitmix64(state),
                    splitmix64(state)};
  return Rng(seq);
}

std::uint64_t substream_seed(std::uint64_t master, std::uint64_t index) noexcept {
  std::uint64_t state = master ^ (0xA3EC647659359ACDULL * (index + 1));
  return splitmix64(state);
}

std::vector<double> draw_samples(const dist::Distribution& d, std::size_t n,
                                 std::uint64_t seed) {
  Rng rng = make_rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(d.sample(rng));
  return out;
}

}  // namespace sre::sim
