#pragma once

// The affine reservation cost of Eq. (1): a reservation of length t1 for a
// job of actual duration t costs  alpha*t1 + beta*min(t1, t) + gamma.
//  * alpha -- price per reserved unit (always paid);
//  * beta  -- price per consumed unit (paid for time actually used);
//  * gamma -- fixed start-up overhead per reservation.
// RESERVATIONONLY is the special case beta = gamma = 0 (cloud Reserved
// Instances); the NeuroHPC scenario uses alpha ~ wait-time slope, beta = 1,
// gamma ~ wait-time intercept.

#include <string>

namespace sre::core {

struct CostModel {
  double alpha = 1.0;
  double beta = 0.0;
  double gamma = 0.0;

  /// alpha = 1, beta = gamma = 0 (w.l.o.g. for the pure-reservation case).
  static constexpr CostModel reservation_only() noexcept { return {1.0, 0.0, 0.0}; }

  [[nodiscard]] constexpr bool valid() const noexcept {
    return alpha > 0.0 && beta >= 0.0 && gamma >= 0.0;
  }

  /// Cost of a single reservation `reserved` for a job of duration `exec`
  /// (Eq. 1). The attempt succeeds iff exec <= reserved.
  [[nodiscard]] double attempt_cost(double reserved, double exec) const noexcept;

  [[nodiscard]] std::string describe() const;

  /// Canonical cache-key fragment, e.g. "cost(alpha=1,beta=0,gamma=0)".
  /// Byte-stable across platforms (shortest round-trip formatting), -0.0
  /// normalized to 0.0; throws ScenarioError(kDomainError) on a non-finite
  /// parameter so a NaN can never poison a plan-cache key. The format is a
  /// stability guarantee consumed by the srv:: plan cache — see
  /// CONTRIBUTING.md "Request-key stability".
  [[nodiscard]] std::string to_key() const;
};

}  // namespace sre::core
