#include "core/bounds.hpp"

#include <cassert>

namespace sre::core {

double upper_bound_t1(const dist::Distribution& d, const CostModel& m) {
  assert(m.valid());
  const dist::Support s = d.support();
  if (s.bounded()) return s.upper;
  const double a = s.lower;
  const double ex = d.mean();
  const double ex2 = d.second_moment();
  return ex + 1.0 + (m.alpha + m.beta) / (2.0 * m.alpha) * (ex2 - a * a) +
         (m.alpha + m.beta + m.gamma) / m.alpha * (ex - a);
}

double upper_bound_cost(const dist::Distribution& d, const CostModel& m) {
  const dist::Support s = d.support();
  if (s.bounded()) {
    return m.alpha * s.upper + m.beta * d.mean() + m.gamma;
  }
  return m.beta * d.mean() + m.alpha * upper_bound_t1(d, m) + m.gamma;
}

}  // namespace sre::core
