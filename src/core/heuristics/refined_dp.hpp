#pragma once

// A hybrid of the paper's two strong approaches: the discretized Theorem 5
// DP supplies a first reservation near the optimum, then a 1-D golden
// search refines t1 *in the continuous problem* -- the Eq. (11) recurrence
// generates the rest of each candidate and the Eq. (4) series costs it
// exactly. Combines the DP's global view (no unimodality assumption: the
// search is bracketed around the DP's answer) with the recurrence's exact
// local optimality, at a fraction of the brute-force grid cost.

#include "core/heuristics/heuristic.hpp"
#include "sim/discretize.hpp"

namespace sre::core {

struct RefinedDpOptions {
  sim::DiscretizationOptions disc{500, 1e-7,
                                  sim::DiscretizationScheme::kEqualProbability};
  /// Refinement bracket around the DP's t1: [t1/spread, t1*spread].
  double bracket_spread = 1.6;
  /// Grid points of the bracketed scan before golden refinement.
  int scan_points = 64;
};

class RefinedDp final : public Heuristic {
 public:
  explicit RefinedDp(RefinedDpOptions opts = {});
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ReservationSequence generate(const dist::Distribution& d,
                                             const CostModel& m) const override;
  /// Context-aware: the DP seed reads its discretization grid from
  /// ctx.cdf_cache (see DiscretizedDp). Identical output either way.
  [[nodiscard]] ReservationSequence generate(
      const dist::Distribution& d, const CostModel& m,
      const GenerateContext& ctx) const override;

 private:
  RefinedDpOptions opts_;
};

}  // namespace sre::core
