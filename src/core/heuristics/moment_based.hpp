#pragma once

// The "other heuristics" of Section 4.3, driven by standard measures of the
// distribution rather than by the structure of the optimal solution:
//   MEAN-BY-MEAN     t1 = mu, t_i = E[X | X > t_{i-1}]   (Appendix B forms)
//   MEAN-STDEV       t1 = mu, t_i = mu + (i-1) sigma
//   MEAN-DOUBLING    t1 = mu, t_i = 2^{i-1} mu
//   MEDIAN-BY-MEDIAN t1 = m,  t_i = Q(1 - 1/2^i)
// Each generator runs until the residual tail mass drops below a coverage
// threshold, then clamps to the support's upper bound (bounded laws) or
// extends geometrically (unbounded laws, when the native rule is too slow).

#include "core/heuristics/heuristic.hpp"

namespace sre::core {

/// Shared generation limits for the simple heuristics.
struct MomentHeuristicOptions {
  std::size_t max_length = 512;
  double coverage_sf = 1e-12;
};

class MeanByMean final : public Heuristic {
 public:
  explicit MeanByMean(MomentHeuristicOptions opts = {});
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ReservationSequence generate(const dist::Distribution& d,
                                             const CostModel& m) const override;

 private:
  MomentHeuristicOptions opts_;
};

class MeanStdev final : public Heuristic {
 public:
  explicit MeanStdev(MomentHeuristicOptions opts = {});
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ReservationSequence generate(const dist::Distribution& d,
                                             const CostModel& m) const override;

 private:
  MomentHeuristicOptions opts_;
};

class MeanDoubling final : public Heuristic {
 public:
  explicit MeanDoubling(MomentHeuristicOptions opts = {});
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ReservationSequence generate(const dist::Distribution& d,
                                             const CostModel& m) const override;

 private:
  MomentHeuristicOptions opts_;
};

class MedianByMedian final : public Heuristic {
 public:
  explicit MedianByMedian(MomentHeuristicOptions opts = {});
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ReservationSequence generate(const dist::Distribution& d,
                                             const CostModel& m) const override;

 private:
  MomentHeuristicOptions opts_;
};

}  // namespace sre::core
