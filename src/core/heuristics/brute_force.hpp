#pragma once

// The BRUTE-FORCE procedure (Section 4.1): try M values of t1 on [a, b]
// (b = upper support bound, or the Theorem 2 bound A1 when unbounded),
// generate the rest of each candidate sequence with the Eq. (11) optimality
// recurrence, cost each candidate, and keep the best. Candidates whose
// recurrence fails to stay strictly increasing are discarded (the gaps of
// Fig. 3).
//
// The paper costs candidates by Monte Carlo with N samples; for variance
// reduction we draw the N samples once and reuse them across all candidates
// (common random numbers), which also makes the Fig. 3 sweep smooth. An
// analytic mode (Eq. 4) is available for deterministic results.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/heuristics/heuristic.hpp"
#include "core/recurrence.hpp"

namespace sre::core {

struct BruteForceOptions {
  std::size_t grid_points = 5000;  ///< M in the paper
  std::size_t mc_samples = 1000;   ///< N in the paper
  std::uint64_t seed = 42;
  bool analytic_eval = false;  ///< cost by Eq. (4) instead of Monte Carlo
  bool parallel = true;
  RecurrenceOptions recurrence{};
  /// Search interval override; defaults to [support lower bound, A1 or b].
  std::optional<double> search_lo;
  std::optional<double> search_hi;
};

/// One point of the t1 sweep (the Fig. 3 series).
struct BruteForcePoint {
  double t1 = 0.0;
  bool valid = false;            ///< recurrence produced a covering sequence
  double normalized_cost = 0.0;  ///< cost / E^o (meaningful iff valid)
};

struct BruteForceOutcome {
  bool found = false;
  double best_t1 = 0.0;
  double best_cost = 0.0;  ///< expected cost (not normalized)
  ReservationSequence best_sequence;
  std::vector<BruteForcePoint> sweep;  ///< filled iff keep_sweep
};

/// Full search; `keep_sweep` additionally records every grid point for
/// Fig.-3-style plots.
BruteForceOutcome brute_force_search(const dist::Distribution& d,
                                     const CostModel& m,
                                     const BruteForceOptions& opts = {},
                                     bool keep_sweep = false);

/// Heuristic adapter around brute_force_search.
class BruteForce final : public Heuristic {
 public:
  explicit BruteForce(BruteForceOptions opts = {});
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ReservationSequence generate(const dist::Distribution& d,
                                             const CostModel& m) const override;
  /// Context-aware: threads ctx.cancel into the per-candidate recurrence so
  /// a scenario deadline can interrupt the t1 grid scan.
  [[nodiscard]] ReservationSequence generate(
      const dist::Distribution& d, const CostModel& m,
      const GenerateContext& ctx) const override;
  [[nodiscard]] const BruteForceOptions& options() const noexcept {
    return opts_;
  }

 private:
  BruteForceOptions opts_;
};

}  // namespace sre::core
