#include "core/heuristics/closed_form_optimal.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "stats/root_finding.hpp"
#include "stats/summary.hpp"

namespace sre::core {

namespace {

// The Exp(1) recurrence s_{i+1} = e^{s_i - s_{i-1}} is doubly-exponentially
// unstable: even at the true optimum the double-precision orbit eventually
// turns around. Generation therefore distinguishes *why* it stopped.
struct UnitSequence {
  std::vector<double> s;
  bool collapsed = false;  ///< monotonicity failed before tail convergence
};

UnitSequence generate_unit_sequence(double s1,
                                    const ExponentialOptimalOptions& opts) {
  UnitSequence out;
  if (!(s1 > 0.0)) {
    out.collapsed = true;
    return out;
  }
  out.s.push_back(s1);
  double prev2 = 0.0, prev = s1;
  while (out.s.size() < opts.max_terms && std::exp(-prev) > opts.tail_tol) {
    const double diff = prev - prev2;
    if (diff > 700.0) break;  // e^{diff} overflows; tail long converged
    const double next = std::exp(diff);
    if (!(next > prev)) {
      out.collapsed = true;
      break;
    }
    out.s.push_back(next);
    prev2 = prev;
    prev = next;
  }
  return out;
}

// Height the orbit must reach before a collapse is attributed to numerical
// instability rather than a genuinely invalid s1. e^{-12} ~ 6e-6 of tail
// mass remains, which the tail estimate below accounts for.
constexpr double kCollapseHeight = 12.0;

}  // namespace

double exponential_unit_cost(double s1,
                             const ExponentialOptimalOptions& opts) {
  static obs::Counter& evals = obs::counter("core.closed_form.unit_cost_evals");
  static obs::Counter& terms = obs::counter("core.closed_form.recurrence_terms");
  evals.add();
  const UnitSequence unit = generate_unit_sequence(s1, opts);
  terms.add(unit.s.size());
  const auto& s = unit.s;
  if (s.empty()) return std::numeric_limits<double>::infinity();
  if (unit.collapsed && s.back() < kCollapseHeight) {
    // The orbit turned around while substantial mass was uncovered: s1 is
    // outside the valid basin (the gaps of Fig. 3a).
    return std::numeric_limits<double>::infinity();
  }
  // E = sum_{i>=0} s_{i+1} e^{-s_i}, with s_0 = 0.
  stats::KahanSum sum;
  double prev = 0.0;
  for (const double si : s) {
    sum.add(si * std::exp(-prev));
    prev = si;
  }
  // Tail of the truncated series. On the true orbit s_{i+1} e^{-s_i}
  // collapses to e^{-s_{i-1}} (Proposition 2's identity), so the remainder
  // after summing terms through s_n is
  //   R = e^{-s_{n-1}} + e^{-s_n} + e^{-s_{n+1}} + ...
  //     ~ e^{-s_{n-1}} + e^{-s_n} / (1 - e^{-gap}),   gap = s_n - s_{n-1}.
  if (s.size() >= 2) {
    const double gap = s.back() - s[s.size() - 2];
    if (gap > 1e-9) {
      sum.add(std::exp(-s[s.size() - 2]) +
              std::exp(-s.back()) / -std::expm1(-gap));
    }
  }
  return sum.value();
}

ExponentialOptimalResult exponential_reservation_only_optimal(
    const ExponentialOptimalOptions& opts) {
  static obs::SpanStats& search_span =
      obs::span_series("heuristic.closed_form_exponential");
  obs::Span span(search_span);
  const auto objective = [&opts](double s1) {
    return exponential_unit_cost(s1, opts);
  };
  const stats::MinimizeResult min = stats::grid_then_golden(
      objective, 1e-6, opts.search_hi,
      static_cast<int>(opts.grid_points), 1e-12);
  ExponentialOptimalResult out;
  out.s1 = min.x;
  out.e1 = min.fx;
  out.unit_sequence =
      ReservationSequence(generate_unit_sequence(out.s1, opts).s);
  return out;
}

ReservationSequence exponential_optimal_sequence(
    double lambda, const ExponentialOptimalOptions& opts) {
  assert(lambda > 0.0);
  const ExponentialOptimalResult unit =
      exponential_reservation_only_optimal(opts);
  std::vector<double> values;
  values.reserve(unit.unit_sequence.size());
  for (const double s : unit.unit_sequence.values()) {
    values.push_back(s / lambda);
  }
  // If the optimal orbit collapsed before deep-tail coverage, extend
  // geometrically so downstream evaluators see a covering sequence.
  while (values.back() < 30.0 / lambda) values.push_back(values.back() * 2.0);
  return ReservationSequence(std::move(values));
}

ReservationSequence single_reservation_at_upper(const dist::Distribution& d) {
  const dist::Support s = d.support();
  assert(s.bounded() && "Theorem 4 candidate needs bounded support");
  return ReservationSequence({s.upper});
}

}  // namespace sre::core
