#include "core/heuristics/brute_force.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "core/bounds.hpp"
#include "core/expected_cost.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"

namespace sre::core {

BruteForceOutcome brute_force_search(const dist::Distribution& d,
                                     const CostModel& m,
                                     const BruteForceOptions& opts,
                                     bool keep_sweep) {
  assert(m.valid() && opts.grid_points >= 1);
  static obs::SpanStats& search_span = obs::span_series("heuristic.brute_force");
  static obs::Counter& candidates =
      obs::counter("core.brute_force.candidate_evals");
  obs::Span span(search_span);
  candidates.add(opts.grid_points);
  BruteForceOutcome out;

  const dist::Support sup = d.support();
  const double lo = opts.search_lo.value_or(sup.lower);
  const double hi = opts.search_hi.value_or(upper_bound_t1(d, m));
  assert(hi > lo);

  // Common random numbers: one sample set shared by every candidate.
  std::vector<double> samples;
  if (!opts.analytic_eval) {
    samples = sim::draw_samples(d, opts.mc_samples, opts.seed);
  }

  const std::size_t M = opts.grid_points;
  constexpr double kInvalid = std::numeric_limits<double>::infinity();
  std::vector<double> costs(M, kInvalid);

  const auto evaluate_candidate = [&](std::size_t idx) {
    // The paper's grid: t1 = a + m (b-a)/M for m = 1..M.
    const double t1 = lo + (hi - lo) * static_cast<double>(idx + 1) /
                               static_cast<double>(M);
    const RecurrenceResult rec = sequence_from_t1(d, m, t1, opts.recurrence);
    if (!rec.valid) return;
    if (opts.analytic_eval) {
      costs[idx] = expected_cost_analytic(rec.sequence, d, m);
    } else {
      const SequenceCostEvaluator eval(rec.sequence, m);
      costs[idx] = eval.mean_cost(samples);
    }
  };

  if (opts.parallel) {
    sim::parallel_for(0, M, evaluate_candidate, 16);
  } else {
    for (std::size_t i = 0; i < M; ++i) evaluate_candidate(i);
  }

  double best_cost = kInvalid;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < M; ++i) {
    if (costs[i] < best_cost) {
      best_cost = costs[i];
      best_idx = i;
    }
  }
  if (std::isfinite(best_cost)) {
    out.found = true;
    out.best_cost = best_cost;
    out.best_t1 = lo + (hi - lo) * static_cast<double>(best_idx + 1) /
                           static_cast<double>(M);
    out.best_sequence =
        sequence_from_t1(d, m, out.best_t1, opts.recurrence).sequence;
  }

  if (keep_sweep) {
    const double omniscient = omniscient_cost(d, m);
    out.sweep.reserve(M);
    for (std::size_t i = 0; i < M; ++i) {
      BruteForcePoint p;
      p.t1 = lo + (hi - lo) * static_cast<double>(i + 1) /
                      static_cast<double>(M);
      p.valid = std::isfinite(costs[i]);
      p.normalized_cost = p.valid ? costs[i] / omniscient : 0.0;
      out.sweep.push_back(p);
    }
  }
  return out;
}

BruteForce::BruteForce(BruteForceOptions opts) : opts_(std::move(opts)) {}

std::string BruteForce::name() const { return "Brute-Force"; }

ReservationSequence BruteForce::generate(const dist::Distribution& d,
                                         const CostModel& m) const {
  return generate(d, m, GenerateContext{});
}

ReservationSequence BruteForce::generate(const dist::Distribution& d,
                                         const CostModel& m,
                                         const GenerateContext& ctx) const {
  BruteForceOptions opts = opts_;
  opts.recurrence.cancel = ctx.cancel;
  BruteForceOutcome out = brute_force_search(d, m, opts);
  if (out.found) return std::move(out.best_sequence);
  // Degenerate fallback (no valid candidate on the grid): cover the
  // distribution by doubling from its mean.
  std::vector<double> values{d.mean()};
  const dist::Support s = d.support();
  if (s.bounded()) {
    if (values.back() < s.upper) values.push_back(s.upper);
  } else {
    while (d.sf(values.back()) > 1e-12 && values.size() < 128) {
      values.push_back(values.back() * 2.0);
    }
  }
  return ReservationSequence(std::move(values));
}

}  // namespace sre::core
