#include "core/heuristics/refined_dp.hpp"

#include <cmath>
#include <limits>

#include "core/expected_cost.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/recurrence.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "stats/root_finding.hpp"

namespace sre::core {

RefinedDp::RefinedDp(RefinedDpOptions opts) : opts_(opts) {}

std::string RefinedDp::name() const { return "Refined-DP"; }

ReservationSequence RefinedDp::generate(const dist::Distribution& d,
                                        const CostModel& m) const {
  return generate(d, m, GenerateContext{});
}

ReservationSequence RefinedDp::generate(const dist::Distribution& d,
                                        const CostModel& m,
                                        const GenerateContext& ctx) const {
  static obs::SpanStats& gen_span = obs::span_series("heuristic.refined_dp");
  obs::Span span(gen_span);
  const DiscretizedDp seed(opts_.disc);
  ReservationSequence best = seed.generate(d, m, ctx);
  double best_cost = expected_cost_analytic(best, d, m);

  const double t1 = best.first();
  const double lo = t1 / opts_.bracket_spread;
  const double hi = std::fmin(
      t1 * opts_.bracket_spread,
      d.support().bounded() ? d.support().upper
                            : std::numeric_limits<double>::infinity());
  if (!(hi > lo)) return best;

  static obs::Counter& objective_evals =
      obs::counter("core.refined_dp.objective_evals");
  RecurrenceOptions rec_opts;
  rec_opts.cancel = ctx.cancel;
  const auto objective = [&](double candidate) {
    objective_evals.add();
    const RecurrenceResult rec = sequence_from_t1(d, m, candidate, rec_opts);
    if (!rec.valid) return std::numeric_limits<double>::infinity();
    return expected_cost_analytic(rec.sequence, d, m);
  };
  const stats::MinimizeResult refined =
      stats::grid_then_golden(objective, lo, hi, opts_.scan_points, 1e-10);
  if (std::isfinite(refined.fx) && refined.fx < best_cost) {
    const RecurrenceResult rec = sequence_from_t1(d, m, refined.x, rec_opts);
    if (rec.valid) {
      best = rec.sequence;
      best_cost = refined.fx;
    }
  }
  return best;
}

}  // namespace sre::core
