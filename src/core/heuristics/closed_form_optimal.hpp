#pragma once

// Closed-form / semi-closed-form optimal strategies:
//  * Uniform(a,b): the single reservation (b) is optimal for any cost
//    parameters (Theorem 4);
//  * Exp(lambda) under RESERVATIONONLY: the optimal sequence is s_i/lambda
//    where s solves the Exp(1) instance -- s_2 = e^{s_1},
//    s_i = e^{s_{i-1} - s_{i-2}} -- and the scalar s1 ~ 0.74219 is found by
//    a 1-D search (Proposition 2).

#include "core/heuristics/heuristic.hpp"

namespace sre::core {

/// Result of solving the Exp(1) RESERVATIONONLY instance.
struct ExponentialOptimalResult {
  double s1 = 0.0;  ///< optimal first request (~0.74219)
  double e1 = 0.0;  ///< optimal expected cost E_1 = s1 + 1 + sum e^{-s_i}
  ReservationSequence unit_sequence;  ///< the s_i, truncated at coverage
};

struct ExponentialOptimalOptions {
  std::size_t grid_points = 4096;  ///< grid for the s1 search on (0, hi]
  double search_hi = 2.0;
  std::size_t max_terms = 96;      ///< series truncation
  double tail_tol = 1e-16;         ///< stop once e^{-s_i} drops below this
};

/// Objective E(s1) = sum_{i>=0} s_{i+1} e^{-s_i} for the Exp(1) instance;
/// +infinity when the induced sequence is not strictly increasing.
double exponential_unit_cost(double s1,
                             const ExponentialOptimalOptions& opts = {});

/// Minimizes exponential_unit_cost over s1 (grid + golden refinement).
ExponentialOptimalResult exponential_reservation_only_optimal(
    const ExponentialOptimalOptions& opts = {});

/// The lambda-scaled optimal sequence t_i = s_i / lambda.
ReservationSequence exponential_optimal_sequence(
    double lambda, const ExponentialOptimalOptions& opts = {});

/// The Theorem 4 optimum for any bounded-support law: the single
/// reservation (b). (Optimal for Uniform; a natural candidate elsewhere.)
ReservationSequence single_reservation_at_upper(const dist::Distribution& d);

}  // namespace sre::core
