#pragma once

// Discretization-based dynamic programming (Section 4.2): truncate the
// continuous law at b = Q(1 - epsilon), discretize it into n points
// (EQUAL-TIME or EQUAL-PROBABILITY), solve the resulting discrete instance
// exactly by the Theorem 5 O(n^2) dynamic program, and -- for unbounded
// laws -- extend the sequence past v_n so it covers the full distribution.

#include "core/heuristics/heuristic.hpp"
#include "dist/discrete.hpp"
#include "sim/discretize.hpp"

namespace sre::core {

/// Exact solution of STOCHASTIC for a discrete law (Theorem 5).
struct DpResult {
  /// Indices into the discrete support chosen as reservations, increasing,
  /// always ending at the last index with positive tail mass.
  std::vector<std::size_t> indices;
  ReservationSequence sequence;
  /// Optimal expected cost E*_1 on the (normalized) discrete law.
  double expected_cost = 0.0;
};

/// `cancel` is polled every 64 rows of the O(n^2) table fill; an expired
/// deadline unwinds with ScenarioError(kTimeout).
DpResult dp_optimal_sequence(const dist::DiscreteDistribution& d,
                             const CostModel& m,
                             const sim::CancelToken& cancel = {});

/// Heuristic adapter: discretize a continuous law, run the DP, extend the
/// tail by doubling past v_n for unbounded support (Section 4.2.2 notes that
/// "additional values can be appended ... using other heuristics").
class DiscretizedDp final : public Heuristic {
 public:
  explicit DiscretizedDp(sim::DiscretizationOptions opts = {});
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ReservationSequence generate(const dist::Distribution& d,
                                             const CostModel& m) const override;
  /// Context-aware: serves the discretization grid from ctx.cdf_cache when
  /// it matches `d`, skipping the n quantile/CDF evaluations. Identical
  /// output either way.
  [[nodiscard]] ReservationSequence generate(
      const dist::Distribution& d, const CostModel& m,
      const GenerateContext& ctx) const override;
  [[nodiscard]] const sim::DiscretizationOptions& options() const noexcept {
    return opts_;
  }

 private:
  sim::DiscretizationOptions opts_;
};

}  // namespace sre::core
