#pragma once

// Discretization-based dynamic programming (Section 4.2): truncate the
// continuous law at b = Q(1 - epsilon), discretize it into n points
// (EQUAL-TIME or EQUAL-PROBABILITY), solve the resulting discrete instance
// exactly by the Theorem 5 dynamic program, and -- for unbounded laws --
// extend the sequence past v_n so it covers the full distribution.
//
// Two inner solvers share the transition expression (sim::DpVariant):
// the O(n^2) reference table fill, and a monotone row-minima variant.
// Multiplying the Theorem 5 transition by the suffix mass S[i] shows row i's
// candidate costs are affine in S[i]:
//   S[i]*c(i,j) = (j-independent terms) + alpha*v_j*S[i] + h(j),
// with slopes alpha*v_j strictly increasing in j. The row minimum is a lower
// envelope of lines queried at x = S[i], so the optimal split index is
// nondecreasing in i (the quadrangle-inequality/total-monotonicity argument
// of the matrix-searching literature). The fast variant maintains the
// envelope as a deque of (candidate, row-interval) segments — each new
// candidate takes over a prefix of future rows, located by divide and
// conquer on the interval — for O(n log n) cost evaluations total. Both
// variants evaluate the *same* noinline transition expression and break
// ties toward the smaller index, so sequences, costs, and choice indices
// are byte-identical (tests/test_dp_differential.cpp enforces this).

#include <cstdint>

#include "core/heuristics/heuristic.hpp"
#include "dist/discrete.hpp"
#include "sim/discretize.hpp"

namespace sre::core {

/// Exact solution of STOCHASTIC for a discrete law (Theorem 5).
struct DpResult {
  /// Indices into the discrete support chosen as reservations, increasing,
  /// always ending at the last index with positive tail mass.
  std::vector<std::size_t> indices;
  ReservationSequence sequence;
  /// Optimal expected cost E*_1 on the (normalized) discrete law.
  double expected_cost = 0.0;
};

/// `cancel` is polled on a work-count budget (every
/// kDpCancelPollBudget transition evaluations, in both variants, so large
/// rows cannot stretch the polling interval); an expired deadline unwinds
/// with ScenarioError(kTimeout). The defaulted `variant` keeps direct
/// callers on the reference oracle; the discretized heuristics select the
/// fast path through DiscretizationOptions::dp_variant.
DpResult dp_optimal_sequence(
    const dist::DiscreteDistribution& d, const CostModel& m,
    const sim::CancelToken& cancel = {},
    sim::DpVariant variant = sim::DpVariant::kReference);

/// Transition evaluations between consecutive cancellation polls. Public so
/// the promptness regression test (test_dp.cpp) can assert against it.
inline constexpr std::uint64_t kDpCancelPollBudget = 4096;

/// Heuristic adapter: discretize a continuous law, run the DP, extend the
/// tail by doubling past v_n for unbounded support (Section 4.2.2 notes that
/// "additional values can be appended ... using other heuristics").
class DiscretizedDp final : public Heuristic {
 public:
  explicit DiscretizedDp(sim::DiscretizationOptions opts = {});
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ReservationSequence generate(const dist::Distribution& d,
                                             const CostModel& m) const override;
  /// Context-aware: serves the discretization grid from ctx.cdf_cache when
  /// it matches `d`, skipping the n quantile/CDF evaluations. Identical
  /// output either way.
  [[nodiscard]] ReservationSequence generate(
      const dist::Distribution& d, const CostModel& m,
      const GenerateContext& ctx) const override;
  [[nodiscard]] const sim::DiscretizationOptions& options() const noexcept {
    return opts_;
  }

 private:
  sim::DiscretizationOptions opts_;
};

}  // namespace sre::core
