#include "core/heuristics/moment_based.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace sre::core {

namespace {

/// Appends elements so the sequence covers the distribution: bounded support
/// gets the upper bound as its final element; unbounded support is extended
/// by doubling until the residual tail mass is below the threshold.
void ensure_coverage(std::vector<double>& values, const dist::Distribution& d,
                     const MomentHeuristicOptions& opts) {
  assert(!values.empty());
  const dist::Support s = d.support();
  if (s.bounded()) {
    if (values.back() < s.upper) values.push_back(s.upper);
    return;
  }
  double cur = values.back();
  std::size_t guard = 0;
  while (d.sf(cur) > opts.coverage_sf && guard++ < 128) {
    cur *= 2.0;
    values.push_back(cur);
  }
}

/// True while generation should continue under the shared limits.
bool keep_going(const std::vector<double>& values, const dist::Distribution& d,
                const MomentHeuristicOptions& opts) {
  if (values.size() >= opts.max_length) return false;
  const dist::Support s = d.support();
  if (s.bounded()) return values.back() < s.upper;
  return d.sf(values.back()) > opts.coverage_sf;
}

}  // namespace

MeanByMean::MeanByMean(MomentHeuristicOptions opts) : opts_(opts) {}

std::string MeanByMean::name() const { return "Mean-by-Mean"; }

ReservationSequence MeanByMean::generate(const dist::Distribution& d,
                                         const CostModel&) const {
  static obs::SpanStats& gen_span = obs::span_series("heuristic.mean_by_mean");
  obs::Span span(gen_span);
  std::vector<double> values{d.mean()};
  while (keep_going(values, d, opts_)) {
    const double next = d.conditional_mean_above(values.back());
    // The conditional mean approaches the current point as the tail empties;
    // stop when the step is numerically negligible and let ensure_coverage
    // finish the job.
    if (!(next > values.back() * (1.0 + 1e-12)) || !std::isfinite(next)) break;
    values.push_back(next);
  }
  ensure_coverage(values, d, opts_);
  return ReservationSequence(std::move(values));
}

MeanStdev::MeanStdev(MomentHeuristicOptions opts) : opts_(opts) {}

std::string MeanStdev::name() const { return "Mean-Stdev"; }

ReservationSequence MeanStdev::generate(const dist::Distribution& d,
                                        const CostModel&) const {
  static obs::SpanStats& gen_span = obs::span_series("heuristic.mean_stdev");
  obs::Span span(gen_span);
  const double mu = d.mean();
  const double sigma = d.stddev();
  assert(sigma > 0.0);
  const dist::Support s = d.support();
  std::vector<double> values{mu};
  std::size_t i = 2;
  while (keep_going(values, d, opts_)) {
    double next = mu + static_cast<double>(i - 1) * sigma;
    if (s.bounded()) next = std::fmin(next, s.upper);
    values.push_back(next);
    ++i;
  }
  ensure_coverage(values, d, opts_);
  return ReservationSequence(std::move(values));
}

MeanDoubling::MeanDoubling(MomentHeuristicOptions opts) : opts_(opts) {}

std::string MeanDoubling::name() const { return "Mean-Doubling"; }

ReservationSequence MeanDoubling::generate(const dist::Distribution& d,
                                           const CostModel&) const {
  static obs::SpanStats& gen_span = obs::span_series("heuristic.mean_doubling");
  obs::Span span(gen_span);
  const dist::Support s = d.support();
  std::vector<double> values{d.mean()};
  while (keep_going(values, d, opts_)) {
    double next = values.back() * 2.0;
    if (s.bounded()) next = std::fmin(next, s.upper);
    values.push_back(next);
  }
  ensure_coverage(values, d, opts_);
  return ReservationSequence(std::move(values));
}

MedianByMedian::MedianByMedian(MomentHeuristicOptions opts) : opts_(opts) {}

std::string MedianByMedian::name() const { return "Med-by-Med"; }

ReservationSequence MedianByMedian::generate(const dist::Distribution& d,
                                             const CostModel&) const {
  static obs::SpanStats& gen_span = obs::span_series("heuristic.med_by_med");
  obs::Span span(gen_span);
  std::vector<double> values{d.median()};
  double tail = 0.5;  // 1/2^i
  while (keep_going(values, d, opts_)) {
    tail *= 0.5;
    if (tail <= 0.0) break;
    const double next = d.quantile(1.0 - tail);
    if (!(next > values.back()) || !std::isfinite(next)) break;
    values.push_back(next);
  }
  ensure_coverage(values, d, opts_);
  return ReservationSequence(std::move(values));
}

}  // namespace sre::core
