#pragma once

// Common interface for reservation-sequence heuristics (Section 4) plus the
// Section 5.1 evaluation methodology: Monte-Carlo expected cost (Eq. 13) and
// normalization by the omniscient scheduler.

#include <memory>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/omniscient.hpp"
#include "core/sequence.hpp"
#include "dist/distribution.hpp"
#include "sim/cancel.hpp"
#include "sim/monte_carlo.hpp"

namespace sre::dist {
class CdfCache;
}  // namespace sre::dist

namespace sre::core {

/// Shared, read-only evaluation context a caller may thread through
/// generate(). Sweep campaigns use it to share one dist::CdfCache per
/// distribution across every (cost model, solver) scenario, eliminating
/// repeated F(t)/quantile(u) evaluations on the discretization grids.
struct GenerateContext {
  /// Cache keyed to the *same distribution instance* passed to generate();
  /// heuristics ignore it when it refers to a different law. nullptr
  /// disables caching.
  const dist::CdfCache* cdf_cache = nullptr;
  /// Cooperative cancellation/deadline token. Heuristics with long inner
  /// loops (DP table fills, the Eq. 11 recurrence, brute-force t1 grids)
  /// poll it on a ~64-iteration stride and unwind with a typed
  /// ScenarioError; the default inert token makes the checks free.
  sim::CancelToken cancel{};
};

class Heuristic {
 public:
  virtual ~Heuristic() = default;

  /// Display name matching the paper's table columns.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Produces a covering reservation sequence for (d, m).
  [[nodiscard]] virtual ReservationSequence generate(
      const dist::Distribution& d, const CostModel& m) const = 0;

  /// Context-aware variant. The default ignores the context; heuristics
  /// with cacheable grid evaluations (DiscretizedDp, RefinedDp) override it.
  /// Results are identical with or without a context.
  [[nodiscard]] virtual ReservationSequence generate(
      const dist::Distribution& d, const CostModel& m,
      const GenerateContext& ctx) const;
};

using HeuristicPtr = std::shared_ptr<const Heuristic>;

/// Result of evaluating one heuristic on one (distribution, cost) pair.
struct HeuristicEvaluation {
  std::string name;
  ReservationSequence sequence;
  double t1 = 0.0;
  double expected_cost_mc = 0.0;        ///< Eq. (13)
  double mc_std_error = 0.0;
  double expected_cost_analytic = 0.0;  ///< Eq. (4)
  double normalized_mc = 0.0;           ///< Eq. (13) / E^o
  double normalized_analytic = 0.0;     ///< Eq. (4) / E^o
};

struct EvaluationOptions {
  sim::MonteCarloOptions mc{};  ///< N = 1000 by default, as in the paper
};

/// Generates + costs a heuristic's sequence both ways.
HeuristicEvaluation evaluate_heuristic(const Heuristic& h,
                                       const dist::Distribution& d,
                                       const CostModel& m,
                                       const EvaluationOptions& opts = {});

/// Context-aware variant (see GenerateContext); numerically identical to the
/// plain overload.
HeuristicEvaluation evaluate_heuristic(const Heuristic& h,
                                       const dist::Distribution& d,
                                       const CostModel& m,
                                       const EvaluationOptions& opts,
                                       const GenerateContext& ctx);

/// The seven heuristics of Table 2, in the paper's column order:
/// Brute-Force, Mean-by-Mean, Mean-Stdev, Mean-Doubling, Med-by-Med,
/// Equal-time, Equal-probability. `fast` shrinks the brute-force grid and
/// discretization sizes for quick tests.
std::vector<HeuristicPtr> standard_heuristics(bool fast = false);

}  // namespace sre::core
