#include "core/heuristics/polish.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "core/expected_cost.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "stats/root_finding.hpp"

namespace sre::core {

namespace {

double cost_of(const std::vector<double>& values, const dist::Distribution& d,
               const CostModel& m) {
  return expected_cost_analytic(ReservationSequence(values), d, m);
}

}  // namespace

PolishResult polish_sequence(const ReservationSequence& seq,
                             const dist::Distribution& d, const CostModel& m,
                             const PolishOptions& opts) {
  assert(!seq.empty() && m.valid());
  static obs::SpanStats& polish_span = obs::span_series("heuristic.polish");
  static obs::Counter& sweep_count = obs::counter("core.polish.sweeps");
  static obs::Counter& coord_evals = obs::counter("core.polish.coordinate_evals");
  obs::Span span(polish_span);
  PolishResult out;
  std::vector<double> values = seq.values();
  out.cost_before = cost_of(values, d, m);
  double current = out.cost_before;

  const dist::Support sup = d.support();
  for (std::size_t sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    const double at_sweep_start = current;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double lo = (i == 0) ? 1e-12 : values[i - 1] * (1.0 + 1e-12);
      double hi;
      if (i + 1 < values.size()) {
        hi = values[i + 1] * (1.0 - 1e-12);
      } else if (sup.bounded()) {
        hi = sup.upper;  // the final element may slide up to b
      } else {
        hi = values[i] * 4.0;  // open tail: allow growth, next sweeps extend
      }
      if (!(hi > lo)) continue;

      const double saved = values[i];
      const auto objective = [&](double t) {
        coord_evals.add();
        values[i] = t;
        return cost_of(values, d, m);
      };
      // Per-coordinate objectives can be bimodal (e.g. Uniform, where both
      // sliding t_i to b and shrinking it to 0 descend), so scan before the
      // golden refinement.
      const stats::MinimizeResult min = stats::grid_then_golden(
          objective, lo, hi, 24, opts.coord_tol * (hi - lo) + 1e-15);
      if (min.fx < current) {
        values[i] = min.x;
        current = min.fx;
      } else {
        values[i] = saved;
      }
    }

    // Element-removal pass: dropping a reservation is an improvement
    // whenever its failure-coverage no longer pays for its alpha/gamma
    // share (degenerate elements near 0 included).
    if (opts.allow_merging && values.size() > 1) {
      for (std::size_t i = 0; i < values.size() && values.size() > 1;) {
        std::vector<double> reduced(values);
        reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(i));
        // Removal must not break coverage of bounded-support laws.
        if (sup.bounded() && reduced.back() < sup.upper) {
          ++i;
          continue;
        }
        const double c = cost_of(reduced, d, m);
        if (c <= current) {
          values = std::move(reduced);
          current = c;
        } else {
          ++i;
        }
      }
    }

    ++out.sweeps;
    sweep_count.add();
    if (at_sweep_start - current <= opts.rel_tol * std::fabs(at_sweep_start)) {
      break;
    }
  }
  out.sequence = ReservationSequence(std::move(values));
  out.cost_after = current;
  return out;
}

}  // namespace sre::core
