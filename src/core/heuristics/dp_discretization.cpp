#include "core/heuristics/dp_discretization.hpp"

#include <cassert>
#include <deque>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace sre::core {

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define SRE_DP_NOINLINE __attribute__((noinline))
#else
#define SRE_DP_NOINLINE
#endif

/// Read-only view of the Theorem 5 table state shared by both fills. E is
/// the array being filled; entries at indices > the current row are final.
struct DpTable {
  const CostModel& m;
  const std::vector<double>& v;
  const std::vector<double>& S;
  const std::vector<double>& W;
  const std::vector<double>& E;
};

/// The Theorem 5 transition:
///   c(i,j) = alpha v_j + gamma + beta (W[i] - W[j+1]) / S[i]
///          + S[j+1]/S[i] * (beta v_j + E[j+1])
/// noinline so every call site — the O(n^2) scan, the envelope comparisons
/// of the monotone fill, and the final row evaluations — computes the
/// byte-identical expression (no per-site fusion or FP contraction), which
/// is what makes the two variants' outputs bitwise comparable.
SRE_DP_NOINLINE double transition_cost(const DpTable& t, std::size_t i,
                                       std::size_t j) {
  double cost = t.m.alpha * t.v[j] + t.m.gamma +
                t.m.beta * (t.W[i] - t.W[j + 1]) / t.S[i];
  if (t.S[j + 1] > 0.0) {
    cost += t.S[j + 1] / t.S[i] * (t.m.beta * t.v[j] + t.E[j + 1]);
  }
  return cost;
}

/// Counts transition evaluations and polls cancellation every
/// kDpCancelPollBudget of them — a *work* budget, not a row stride: a
/// reference row costs O(n) evaluations and a monotone row O(log n), yet
/// both variants poll equally often per unit of work, so a deadline expires
/// promptly even at n = 100k (see Dp.CancelPollingIsWorkBudgeted).
struct PollBudget {
  const sim::CancelToken& cancel;
  std::uint64_t evals = 0;

  void tick() {
    static_assert((kDpCancelPollBudget & (kDpCancelPollBudget - 1)) == 0,
                  "poll budget must be a power of two");
    if ((++evals & (kDpCancelPollBudget - 1)) == 0u) {
      cancel.check("core.dp.table_fill");
    }
  }
};

/// The O(n^2) reference: scan every admissible split, first minimum wins.
void fill_reference(const DpTable& t, std::size_t n, PollBudget& poll,
                    std::vector<double>& E, std::vector<std::size_t>& choice,
                    std::uint64_t& rows) {
  for (std::size_t i = n; i-- > 0;) {
    if ((i & 63u) == 0u) poll.cancel.check("core.dp.table_fill");
    if (t.S[i] <= 0.0) {
      // No mass at or above v_i: never reached with positive probability.
      E[i] = 0.0;
      choice[i] = i;
      continue;
    }
    ++rows;
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = i;
    for (std::size_t j = i; j < n; ++j) {
      poll.tick();
      const double cost = transition_cost(t, i, j);
      if (cost < best) {
        best = cost;
        best_j = j;
      }
      // Once the tail past j is empty, larger j only raises alpha v_j.
      if (t.S[j + 1] <= 0.0) break;
    }
    E[i] = best;
    choice[i] = best_j;
  }
}

/// Monotone row-minima (divide-and-conquer on row intervals). Row i's
/// candidate costs are affine in the suffix mass,
///   S[i] c(i,j) = (terms in i only) + alpha v_j S[i] + h(j),
/// a lower envelope of lines with strictly increasing slopes alpha v_j
/// queried at x = S[i]; x grows as i falls, so the optimal split index is
/// nondecreasing in i. Rows are processed descending; the deque partitions
/// the not-yet-answered rows [0, i] into (candidate, interval) segments,
/// best candidate per row, front covering the lowest rows. A new candidate
/// j = i has the smallest slope seen, so it can only take over a *prefix*
/// [0, r*] of future rows: whole segments are popped from the front and the
/// boundary inside the last partial segment is found by divide and conquer.
/// Every comparison evaluates the original transition at two candidates and
/// breaks ties toward the smaller index — exactly the reference scan's
/// first-minimum rule — so the fill is byte-identical to fill_reference.
void fill_monotone(const DpTable& t, std::size_t n, PollBudget& poll,
                   std::vector<double>& E, std::vector<std::size_t>& choice,
                   std::uint64_t& rows) {
  struct Segment {
    std::size_t j;   ///< owning candidate
    std::size_t lo;  ///< lowest row of the segment
  };
  std::deque<Segment> segs;

  // True when candidate c is at least as good as owner o for row r (ties go
  // to c, the smaller index, matching the reference's first-minimum rule).
  const auto beats = [&](std::size_t c, std::size_t o, std::size_t r) {
    poll.tick();
    const double cost_c = transition_cost(t, r, c);
    poll.tick();
    const double cost_o = transition_cost(t, r, o);
    return cost_c <= cost_o;
  };

  for (std::size_t i = n; i-- > 0;) {
    if ((i & 63u) == 0u) poll.cancel.check("core.dp.table_fill");
    if (t.S[i] <= 0.0) {
      E[i] = 0.0;
      choice[i] = i;
      continue;
    }
    ++rows;

    // Insert candidate j = i (its tail term uses E[i+1], already final).
    if (segs.empty()) {
      segs.push_front({i, 0});
    } else {
      // Pop whole segments the candidate dominates. Beating a segment's
      // owner at the segment's hi (the smallest query point in its range)
      // means the smaller-slope candidate beats it on the entire segment —
      // and, by the envelope ordering, every owner of a previously popped
      // segment too. hi of the front segment is one below its upper
      // neighbour's lo, or the current row when it is the only segment.
      bool popped = false;
      while (!segs.empty()) {
        const std::size_t hi_front =
            segs.size() > 1 ? segs[1].lo - 1 : i;
        if (beats(i, segs.front().j, hi_front)) {
          segs.pop_front();
          popped = true;
        } else {
          break;
        }
      }
      if (segs.empty()) {
        segs.push_front({i, 0});
      } else {
        Segment& front = segs.front();
        const std::size_t hi_front = segs.size() > 1 ? segs[1].lo - 1 : i;
        if (beats(i, front.j, front.lo)) {
          // Boundary r* in [front.lo, hi_front): beats at lo, not at hi.
          std::size_t lo = front.lo, hi = hi_front;
          while (hi - lo > 1) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (beats(i, front.j, mid)) {
              lo = mid;
            } else {
              hi = mid;
            }
          }
          front.lo = lo + 1;
          segs.push_front({i, 0});
        } else if (popped) {
          // The candidate lost at front.lo but already dominated every
          // popped segment: it owns exactly the popped prefix
          // [0, front.lo - 1]. Dropping it here would orphan those rows.
          segs.push_front({i, 0});
        }
        // Otherwise (nothing popped, loses at row 0, the largest query
        // point): with the smallest slope, losing at the largest x means
        // losing at every smaller x too — dominated forever, drop it.
      }
    }

    // Answer row i: the back segment covers the highest unanswered row.
    const std::size_t owner = segs.back().j;
    poll.tick();
    E[i] = transition_cost(t, i, owner);
    choice[i] = owner;
    if (segs.back().lo == i) segs.pop_back();  // segment exhausted
  }
}

}  // namespace

DpResult dp_optimal_sequence(const dist::DiscreteDistribution& d,
                             const CostModel& m, const sim::CancelToken& cancel,
                             sim::DpVariant variant) {
  assert(m.valid());
  static obs::SpanStats& fill_span = obs::span_series("core.dp.table_fill");
  obs::Span span(fill_span);
  static obs::Counter& fills = obs::counter("core.dp.table_fills");
  static obs::Counter& cell_count = obs::counter("core.dp.cells");
  static obs::Counter& row_count = obs::counter("core.dp.rows");
  static obs::Counter& argmin_evals = obs::counter("core.dp.argmin_evals");
  fills.add();
  const auto& v = d.values();
  const auto& f = d.probabilities();
  const std::size_t n = v.size();

  // Suffix mass S[i] = sum_{k>=i} f_k and weighted mass W[i] = sum f_k v_k,
  // which turn the Theorem 5 transition into O(1):
  //   E[i] = min_{i<=j<n}  alpha v_j + gamma
  //        + beta (W[i] - W[j+1]) / S[i]              (completed within v_j)
  //        + S[j+1]/S[i] * (beta v_j + E[j+1])        (failed; recurse)
  std::vector<double> S(n + 1, 0.0), W(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    S[i] = S[i + 1] + f[i];
    W[i] = W[i + 1] + f[i] * v[i];
  }

  std::vector<double> E(n + 1, 0.0);
  std::vector<std::size_t> choice(n, n);
  const DpTable table{m, v, S, W, E};
  PollBudget poll{cancel};
  std::uint64_t rows = 0;
  switch (variant) {
    case sim::DpVariant::kReference:
      fill_reference(table, n, poll, E, choice, rows);
      break;
    case sim::DpVariant::kDivideAndConquer:
      fill_monotone(table, n, poll, E, choice, rows);
      break;
  }
  cell_count.add(poll.evals);
  argmin_evals.add(poll.evals);
  row_count.add(rows);

  DpResult out;
  out.expected_cost = E[0];
  std::vector<double> seq_values;
  std::size_t i = 0;
  while (i < n && S[i] > 0.0) {
    const std::size_t j = choice[i];
    out.indices.push_back(j);
    seq_values.push_back(v[j]);
    i = j + 1;
  }
  assert(!seq_values.empty());
  out.sequence = ReservationSequence(std::move(seq_values));
  return out;
}

DiscretizedDp::DiscretizedDp(sim::DiscretizationOptions opts) : opts_(opts) {}

std::string DiscretizedDp::name() const {
  return sim::to_string(opts_.scheme);
}

ReservationSequence DiscretizedDp::generate(const dist::Distribution& d,
                                            const CostModel& m) const {
  return generate(d, m, GenerateContext{});
}

ReservationSequence DiscretizedDp::generate(const dist::Distribution& d,
                                            const CostModel& m,
                                            const GenerateContext& ctx) const {
  static obs::SpanStats& eq_time_span =
      obs::span_series("heuristic.dp_equal_time");
  static obs::SpanStats& eq_prob_span =
      obs::span_series("heuristic.dp_equal_probability");
  obs::Span span(opts_.scheme == sim::DiscretizationScheme::kEqualTime
                     ? eq_time_span
                     : eq_prob_span);
  std::shared_ptr<const dist::TabulatedCdf> tab;
  if (ctx.cdf_cache != nullptr && &ctx.cdf_cache->distribution() == &d) {
    tab = ctx.cdf_cache->table(opts_.n, opts_.epsilon);
  }
  const dist::DiscreteDistribution disc = sim::discretize(d, opts_, tab.get());
  DpResult dp = dp_optimal_sequence(disc, m, ctx.cancel, opts_.dp_variant);
  // Tail extension for unbounded laws: double past v_n until covered.
  const dist::Support s = d.support();
  std::vector<double> values = dp.sequence.values();
  if (s.bounded()) {
    if (values.back() < s.upper) values.push_back(s.upper);
  } else {
    double cur = values.back();
    std::size_t guard = 0;
    while (d.sf(cur) > 1e-12 && guard++ < 128) {
      cur *= 2.0;
      values.push_back(cur);
    }
  }
  return ReservationSequence(std::move(values));
}

}  // namespace sre::core
