#include "core/heuristics/dp_discretization.hpp"

#include <cassert>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace sre::core {

DpResult dp_optimal_sequence(const dist::DiscreteDistribution& d,
                             const CostModel& m,
                             const sim::CancelToken& cancel) {
  assert(m.valid());
  static obs::SpanStats& fill_span = obs::span_series("core.dp.table_fill");
  obs::Span span(fill_span);
  static obs::Counter& fills = obs::counter("core.dp.table_fills");
  static obs::Counter& cell_count = obs::counter("core.dp.cells");
  fills.add();
  std::uint64_t cells = 0;  // inner-loop transitions, flushed once at exit
  const auto& v = d.values();
  const auto& f = d.probabilities();
  const std::size_t n = v.size();

  // Suffix mass S[i] = sum_{k>=i} f_k and weighted mass W[i] = sum f_k v_k,
  // which turn the Theorem 5 transition into O(1):
  //   E[i] = min_{i<=j<n}  alpha v_j + gamma
  //        + beta (W[i] - W[j+1]) / S[i]              (completed within v_j)
  //        + S[j+1]/S[i] * (beta v_j + E[j+1])        (failed; recurse)
  std::vector<double> S(n + 1, 0.0), W(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    S[i] = S[i + 1] + f[i];
    W[i] = W[i + 1] + f[i] * v[i];
  }

  std::vector<double> E(n + 1, 0.0);
  std::vector<std::size_t> choice(n, n);
  for (std::size_t i = n; i-- > 0;) {
    if ((i & 63u) == 0u) cancel.check("core.dp.table_fill");
    if (S[i] <= 0.0) {
      // No mass at or above v_i: never reached with positive probability.
      E[i] = 0.0;
      choice[i] = i;
      continue;
    }
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = i;
    for (std::size_t j = i; j < n; ++j) {
      ++cells;
      double cost = m.alpha * v[j] + m.gamma + m.beta * (W[i] - W[j + 1]) / S[i];
      if (S[j + 1] > 0.0) {
        cost += S[j + 1] / S[i] * (m.beta * v[j] + E[j + 1]);
      }
      if (cost < best) {
        best = cost;
        best_j = j;
      }
      // Once the tail past j is empty, larger j only raises alpha v_j.
      if (S[j + 1] <= 0.0) break;
    }
    E[i] = best;
    choice[i] = best_j;
  }

  cell_count.add(cells);

  DpResult out;
  out.expected_cost = E[0];
  std::vector<double> seq_values;
  std::size_t i = 0;
  while (i < n && S[i] > 0.0) {
    const std::size_t j = choice[i];
    out.indices.push_back(j);
    seq_values.push_back(v[j]);
    i = j + 1;
  }
  assert(!seq_values.empty());
  out.sequence = ReservationSequence(std::move(seq_values));
  return out;
}

DiscretizedDp::DiscretizedDp(sim::DiscretizationOptions opts) : opts_(opts) {}

std::string DiscretizedDp::name() const {
  return sim::to_string(opts_.scheme);
}

ReservationSequence DiscretizedDp::generate(const dist::Distribution& d,
                                            const CostModel& m) const {
  return generate(d, m, GenerateContext{});
}

ReservationSequence DiscretizedDp::generate(const dist::Distribution& d,
                                            const CostModel& m,
                                            const GenerateContext& ctx) const {
  static obs::SpanStats& eq_time_span =
      obs::span_series("heuristic.dp_equal_time");
  static obs::SpanStats& eq_prob_span =
      obs::span_series("heuristic.dp_equal_probability");
  obs::Span span(opts_.scheme == sim::DiscretizationScheme::kEqualTime
                     ? eq_time_span
                     : eq_prob_span);
  std::shared_ptr<const dist::TabulatedCdf> tab;
  if (ctx.cdf_cache != nullptr && &ctx.cdf_cache->distribution() == &d) {
    tab = ctx.cdf_cache->table(opts_.n, opts_.epsilon);
  }
  const dist::DiscreteDistribution disc = sim::discretize(d, opts_, tab.get());
  DpResult dp = dp_optimal_sequence(disc, m, ctx.cancel);
  // Tail extension for unbounded laws: double past v_n until covered.
  const dist::Support s = d.support();
  std::vector<double> values = dp.sequence.values();
  if (s.bounded()) {
    if (values.back() < s.upper) values.push_back(s.upper);
  } else {
    double cur = values.back();
    std::size_t guard = 0;
    while (d.sf(cur) > 1e-12 && guard++ < 128) {
      cur *= 2.0;
      values.push_back(cur);
    }
  }
  return ReservationSequence(std::move(values));
}

}  // namespace sre::core
