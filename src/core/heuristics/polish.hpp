#pragma once

// Coordinate-descent polishing of a full reservation sequence: each element
// in turn is moved to the 1-D minimizer of the exact expected cost within
// (t_{i-1}, t_{i+1}), sweeping until the improvement stalls. Unlike the
// Eq. (11) recurrence this never becomes numerically invalid (no orbit to
// collapse), so it can squeeze the final fractions of a percent out of any
// heuristic's plan -- it is also how the exact Exp(1) optimum E1 = 2.36450
// was independently verified (see EXPERIMENTS.md).

#include "core/cost_model.hpp"
#include "core/sequence.hpp"
#include "dist/distribution.hpp"

namespace sre::core {

struct PolishOptions {
  std::size_t max_sweeps = 24;
  /// Stop when a full sweep improves the cost by less than this fraction.
  double rel_tol = 1e-9;
  /// Per-coordinate golden-section tolerance (relative to the bracket).
  double coord_tol = 1e-10;
  /// Elements may also be *removed* when a sweep finds two nearly equal
  /// neighbours (merging them reduces gamma-cost plans).
  bool allow_merging = true;
};

struct PolishResult {
  ReservationSequence sequence;
  double cost_before = 0.0;
  double cost_after = 0.0;
  std::size_t sweeps = 0;
};

/// Polishes `seq` under the exact Eq. (4) objective. The result never costs
/// more than the input.
PolishResult polish_sequence(const ReservationSequence& seq,
                             const dist::Distribution& d, const CostModel& m,
                             const PolishOptions& opts = {});

}  // namespace sre::core
