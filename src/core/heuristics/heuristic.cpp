#include "core/heuristics/heuristic.hpp"

#include "core/expected_cost.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/moment_based.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace sre::core {

ReservationSequence Heuristic::generate(const dist::Distribution& d,
                                        const CostModel& m,
                                        const GenerateContext& /*ctx*/) const {
  return generate(d, m);
}

HeuristicEvaluation evaluate_heuristic(const Heuristic& h,
                                       const dist::Distribution& d,
                                       const CostModel& m,
                                       const EvaluationOptions& opts) {
  return evaluate_heuristic(h, d, m, opts, GenerateContext{});
}

HeuristicEvaluation evaluate_heuristic(const Heuristic& h,
                                       const dist::Distribution& d,
                                       const CostModel& m,
                                       const EvaluationOptions& opts,
                                       const GenerateContext& ctx) {
  static obs::SpanStats& eval_span = obs::span_series("core.evaluate_heuristic");
  static obs::SpanStats& mc_span = obs::span_series("core.mc_expected_cost");
  obs::Span span(eval_span);
  HeuristicEvaluation out;
  out.name = h.name();
  out.sequence = h.generate(d, m, ctx);
  out.t1 = out.sequence.first();

  sim::MonteCarloOptions mc_opts = opts.mc;
  if (!mc_opts.cancel.armed()) mc_opts.cancel = ctx.cancel;
  const sim::MonteCarloResult mc = [&] {
    obs::Span inner(mc_span);
    return expected_cost_monte_carlo(out.sequence, d, m, mc_opts);
  }();
  out.expected_cost_mc = mc.mean;
  out.mc_std_error = mc.std_error;
  out.expected_cost_analytic = expected_cost_analytic(out.sequence, d, m);

  const double omniscient = omniscient_cost(d, m);
  out.normalized_mc = out.expected_cost_mc / omniscient;
  out.normalized_analytic = out.expected_cost_analytic / omniscient;
  return out;
}

std::vector<HeuristicPtr> standard_heuristics(bool fast) {
  BruteForceOptions bf;
  sim::DiscretizationOptions eq_time{1000, 1e-7,
                                     sim::DiscretizationScheme::kEqualTime};
  sim::DiscretizationOptions eq_prob{
      1000, 1e-7, sim::DiscretizationScheme::kEqualProbability};
  if (fast) {
    bf.grid_points = 300;
    bf.mc_samples = 400;
    eq_time.n = 200;
    eq_prob.n = 200;
  }
  return {
      std::make_shared<BruteForce>(bf),
      std::make_shared<MeanByMean>(),
      std::make_shared<MeanStdev>(),
      std::make_shared<MeanDoubling>(),
      std::make_shared<MedianByMedian>(),
      std::make_shared<DiscretizedDp>(eq_time),
      std::make_shared<DiscretizedDp>(eq_prob),
  };
}

}  // namespace sre::core
