#include "core/omniscient.hpp"

namespace sre::core {

double omniscient_cost(const dist::Distribution& d, const CostModel& m) {
  return (m.alpha + m.beta) * d.mean() + m.gamma;
}

double normalized_cost(double expected, const dist::Distribution& d,
                       const CostModel& m) {
  return expected / omniscient_cost(d, m);
}

}  // namespace sre::core
