#include "core/strategy_report.hpp"

#include <cassert>
#include <cmath>

#include "core/expected_cost.hpp"
#include "stats/integrate.hpp"
#include "stats/summary.hpp"

namespace sre::core {

double cost_quantile(const ReservationSequence& seq,
                     const dist::Distribution& d, const CostModel& m,
                     double p) {
  return seq.cost_for(d.quantile(p), m);
}

StrategyReport analyze_strategy(const ReservationSequence& seq,
                                const dist::Distribution& d,
                                const CostModel& m, const ReportOptions& opts) {
  assert(!seq.empty() && m.valid());
  StrategyReport out;
  out.expected_cost = expected_cost_analytic(seq, d, m);

  // Walk the buckets (t_{k-1}, t_k], extending with the implicit doubling
  // tail, accumulating:
  //   * attempts pmf:      P(bucket k)
  //   * expected attempts: sum_k k P(bucket k)
  //   * expected waste:    sum_i t_i P(X > t_i)  (failed attempts burn t_i)
  //   * E[C^2]:            per-bucket quadrature of the squared cost
  stats::KahanSum e_attempts, e_waste, e_c2;
  double prev = 0.0;
  double sf_prev = d.sf(0.0);
  double failed_prefix = 0.0;  // sum over failed attempts of (a+b) t_i + g
  std::size_t k = 0;
  std::size_t stored = 0;

  const dist::Support sup = d.support();
  auto next_reservation = [&]() -> double {
    if (stored < seq.size()) return seq[stored++];
    return prev * 2.0;  // implicit tail
  };

  while (k < opts.max_buckets) {
    const double t_k = next_reservation();
    const double sf_k = d.sf(t_k);
    const double p_bucket = sf_prev - sf_k;
    ++k;
    if (p_bucket > 0.0) {
      if (out.attempts_pmf.size() < k) out.attempts_pmf.resize(k, 0.0);
      out.attempts_pmf[k - 1] = p_bucket;
      e_attempts.add(static_cast<double>(k) * p_bucket);

      // Squared cost over the bucket: (failed_prefix + a t_k + b x + g)^2.
      const double constant = failed_prefix + m.alpha * t_k + m.gamma;
      if (m.beta == 0.0) {
        e_c2.add(constant * constant * p_bucket);
      } else {
        const double lo = std::fmax(prev, sup.lower);
        const double hi = sup.bounded() ? std::fmin(t_k, sup.upper) : t_k;
        if (hi > lo) {
          e_c2.add(stats::integrate(
              [&](double x) {
                const double pdf = d.pdf(x);
                if (!std::isfinite(pdf)) return 0.0;
                const double c = constant + m.beta * x;
                return c * c * pdf;
              },
              lo, hi, 1e-10 * (1.0 + constant * constant)));
        }
      }
    }
    if (sf_k > 0.0) {
      e_waste.add(t_k * sf_k);
    }
    failed_prefix += (m.alpha + m.beta) * t_k + m.gamma;
    prev = t_k;
    sf_prev = sf_k;
    if (sf_prev <= opts.tail_sf_tol) break;
  }

  out.expected_attempts = e_attempts.value();
  out.expected_waste = e_waste.value();
  const double var = e_c2.value() - out.expected_cost * out.expected_cost;
  out.cost_stddev = std::sqrt(std::fmax(var, 0.0));

  out.cost_quantiles.reserve(opts.quantiles.size());
  for (const double p : opts.quantiles) {
    out.cost_quantiles.emplace_back(p, cost_quantile(seq, d, m, p));
  }
  return out;
}

}  // namespace sre::core
