#pragma once

// Scenario-grid campaigns (the paper's experimental methodology, Tables 2-4
// and Figs. 3-4): evaluate every solver over a grid of (distribution, cost
// model) scenarios. The grid is fanned across sim::SweepRunner — results
// come back in submission order, so a parallel campaign prints exactly what
// the serial one does — and every scenario of the same distribution shares
// one dist::CdfCache, so the discretization-grid CDF/quantile work is paid
// once per (distribution, n, epsilon) instead of once per scenario.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/heuristics/heuristic.hpp"
#include "dist/factory.hpp"
#include "dist/tabulated_cdf.hpp"
#include "sim/fault.hpp"
#include "sim/sweep.hpp"

namespace sre::core {

/// One cell of a campaign grid.
struct SweepScenario {
  std::string dist_label;
  dist::DistributionPtr dist;
  std::string model_label;
  CostModel model;
  HeuristicPtr solver;
};

/// Row-major cartesian product: distribution outermost, solver innermost.
/// Index of (d, m, s) is (d * #models + m) * #solvers + s.
std::vector<SweepScenario> make_scenario_grid(
    const std::vector<dist::PaperInstance>& dists,
    const std::vector<std::pair<std::string, CostModel>>& models,
    const std::vector<HeuristicPtr>& solvers);

struct ScenarioOutcome {
  std::string dist_label;
  std::string model_label;
  std::string solver;
  HeuristicEvaluation eval;
  /// False iff the scenario failed in a resilient run; `eval` is then
  /// default-constructed filler and the matching entry in
  /// ScenarioSweepReport::failures.failures has the typed cause. Plain
  /// run_scenario_sweep always leaves this true.
  bool ok = true;
};

/// Aggregated dist::CdfCache activity over one campaign.
struct CdfCacheCounters {
  std::uint64_t hits = 0;          ///< grid evaluations served from tables
  std::uint64_t misses = 0;        ///< lookups that fell through to the law
  std::uint64_t tables_built = 0;  ///< TabulatedCdf constructions
  std::uint64_t table_reuses = 0;  ///< table requests served by reuse
};

struct ScenarioSweepReport {
  /// One outcome per scenario, in submission (grid) order. In a resilient
  /// run, failed scenarios keep their slot (labels filled, ok = false) so
  /// indices line up with the grid and with failures.failures.
  std::vector<ScenarioOutcome> outcomes;
  sim::SweepCounters sweep;
  CdfCacheCounters cache;
  /// Failure summary of a resilient run (empty — scenarios == failed == 0 —
  /// for plain run_scenario_sweep).
  sim::SweepFailureReport failures;
};

/// Runs the campaign. Deterministic: for fixed scenarios and eval options
/// the report's outcomes are bit-identical for any sim::SweepOptions
/// (serial, global pool, or a dedicated pool of any size).
ScenarioSweepReport run_scenario_sweep(
    const std::vector<SweepScenario>& scenarios,
    const EvaluationOptions& eval = {}, const sim::SweepOptions& opts = {});

/// Chaos / resilience policy for run_scenario_sweep_resilient.
struct ResilientSweepOptions {
  sim::ResilienceOptions resilience{};
  /// Deterministic fault plan; scenario id = grid index, so the injected
  /// set is a pure function of (plan seed, grid) — the chaos tests compare
  /// per-class failure counts against the plan replayed offline.
  sim::FaultPlan faults{};
};

/// Resilient campaign: per-scenario isolation, typed failure taxonomy,
/// bounded retry for injected faults, optional per-scenario deadline, and
/// graceful degradation — the sweep always completes and returns every
/// non-faulted outcome bit-identical to a fault-free run (solvers never see
/// the fault plan; injection happens before evaluation starts).
ScenarioSweepReport run_scenario_sweep_resilient(
    const std::vector<SweepScenario>& scenarios,
    const EvaluationOptions& eval = {}, const sim::SweepOptions& opts = {},
    const ResilientSweepOptions& res = {});

}  // namespace sre::core
