#include "core/recurrence.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"

namespace sre::core {

namespace {

RecurrenceResult sequence_from_t1_impl(const dist::Distribution& d,
                                       const CostModel& m, double t1,
                                       const RecurrenceOptions& opts) {
  assert(m.valid());
  RecurrenceResult out;
  const dist::Support sup = d.support();
  if (!(t1 > 0.0) || !std::isfinite(t1)) return out;

  std::vector<double> values;
  values.reserve(64);

  double t_prev2 = 0.0;  // t_{i-2}
  double t_prev = t1;    // t_{i-1}
  values.push_back(t1);

  if (sup.bounded() && t1 >= sup.upper) {
    // A single reservation at (or past) the upper bound covers everything.
    values.back() = sup.upper;
    out.sequence = ReservationSequence(std::move(values));
    out.valid = true;
    return out;
  }

  while (values.size() < opts.max_length) {
    // Strided poll: the deadline check reads the steady clock, so once per
    // 64 elements bounds the overhead while keeping timeouts responsive.
    if ((values.size() & 63u) == 0u) opts.cancel.check("core.recurrence");
    const double sf_prev = d.sf(t_prev);
    if (!sup.bounded() && sf_prev <= opts.coverage_sf) break;  // covered
    const double density = d.pdf(t_prev);
    if (!(density > 0.0) || !std::isfinite(density)) {
      // Eq. (11) is undefined where f vanishes; Theorem 3 proves this cannot
      // happen along an optimal sequence, so this t1 is not optimal.
      out.sequence = ReservationSequence(std::move(values));
      out.violation_index = values.size();
      return out;
    }
    const double sf_prev2 = d.sf(t_prev2);
    const double next = sf_prev2 / density +
                        (m.beta / m.alpha) * (sf_prev / density - t_prev) -
                        m.gamma / m.alpha;
    if (!(next > t_prev) || !std::isfinite(next) || next > opts.value_cap) {
      out.sequence = ReservationSequence(std::move(values));
      out.violation_index = values.size();
      return out;
    }
    if (sup.bounded() && next >= sup.upper) {
      values.push_back(sup.upper);
      out.sequence = ReservationSequence(std::move(values));
      out.valid = true;
      return out;
    }
    values.push_back(next);
    t_prev2 = t_prev;
    t_prev = next;
  }

  // Unbounded support: if the recurrence was too slow to cover within
  // max_length, extend geometrically (pragmatic tail; the residual mass is
  // tiny, so the extension's impact on the expected cost is bounded by it).
  if (sup.bounded()) {
    // Hit max_length before reaching b: extend by midpoint doubling to b.
    while (values.back() < sup.upper && values.size() < opts.max_length + 64) {
      const double next = std::fmin(sup.upper, values.back() * 2.0);
      if (!(next > values.back())) break;
      values.push_back(next);
    }
    out.valid = values.back() >= sup.upper;
  } else {
    double cur = values.back();
    while (d.sf(cur) > opts.coverage_sf &&
           values.size() < opts.max_length + 64) {
      cur *= 2.0;
      values.push_back(cur);
    }
    out.valid = d.sf(values.back()) <= opts.coverage_sf;
  }
  out.sequence = ReservationSequence(std::move(values));
  return out;
}

}  // namespace

RecurrenceResult sequence_from_t1(const dist::Distribution& d,
                                  const CostModel& m, double t1,
                                  const RecurrenceOptions& opts) {
  static obs::Counter& calls = obs::counter("core.recurrence.calls");
  static obs::Counter& element_count = obs::counter("core.recurrence.elements");
  calls.add();
  RecurrenceResult out = sequence_from_t1_impl(d, m, t1, opts);
  element_count.add(out.sequence.size());
  return out;
}

}  // namespace sre::core
