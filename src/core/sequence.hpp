#pragma once

// Reservation sequences (Section 2.2): strictly increasing positive
// durations t1 < t2 < ... A stored sequence is always finite; distributions
// with unbounded support conceptually require an infinite sequence, so every
// cost computation treats a finite sequence as implicitly continued by
// doubling past its last element ("implicit geometric tail"). Generators in
// this library extend sequences until the residual tail mass is below ~1e-12,
// which makes the implicit tail's contribution negligible -- it exists only
// so that Monte-Carlo draws deeper in the tail never fall off the sequence.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/cost_model.hpp"
#include "dist/distribution.hpp"

namespace sre::core {

class ReservationSequence {
 public:
  ReservationSequence() = default;

  /// Asserts the values are positive and strictly increasing.
  explicit ReservationSequence(std::vector<double> values);

  /// Validating factory: nullopt if values are empty, non-positive, or not
  /// strictly increasing.
  static std::optional<ReservationSequence> try_create(
      std::vector<double> values);

  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double first() const { return values_.front(); }
  [[nodiscard]] double last() const { return values_.back(); }
  [[nodiscard]] double operator[](std::size_t i) const { return values_[i]; }

  /// Appends a strictly larger reservation (asserts monotonicity).
  void push_back(double t);

  /// True if some stored element covers t (t <= last()).
  [[nodiscard]] bool covers(double t) const noexcept;

  /// Number of reservations paid for a job of duration t, counting the
  /// implicit doubling tail when t exceeds the last stored element.
  [[nodiscard]] std::size_t attempts_for(double t) const noexcept;

  /// Total cost C(k, t) of Eq. (2) for a job of duration t, including the
  /// implicit doubling tail if needed.
  [[nodiscard]] double cost_for(double t, const CostModel& m) const noexcept;

  /// True if the stored part already covers the distribution up to residual
  /// tail mass `sf_tol` (always true for bounded support iff last() >= b).
  [[nodiscard]] bool covers_distribution(const dist::Distribution& d,
                                         double sf_tol = 1e-12) const;

 private:
  std::vector<double> values_;
};

/// Precomputed evaluator for repeatedly costing many job durations against
/// one (sequence, cost model) pair -- the inner loop of the brute-force
/// search. cost(t) equals sequence.cost_for(t, model) but runs in
/// O(log n) with two prefix-sum lookups.
class SequenceCostEvaluator {
 public:
  SequenceCostEvaluator(const ReservationSequence& seq, const CostModel& m);

  [[nodiscard]] double cost(double t) const noexcept;

  /// Mean cost over a fixed sample set (the Eq. 13 estimator with common
  /// random numbers).
  [[nodiscard]] double mean_cost(std::span<const double> samples) const;

 private:
  std::vector<double> values_;
  std::vector<double> prefix_;  // prefix_[k] = sum_{i<k} ((alpha+beta) t_i + gamma)
  CostModel model_;
};

}  // namespace sre::core
