#pragma once

// Appendix C: the characterization of the optimal sequence extends from
// affine reservation costs to any convex cost G(x). The expected cost becomes
//   E(S) = beta E[X] + sum_{i>=0} (G(t_{i+1}) + beta t_i) P(X > t_i)
// and the optimality recurrence (Eq. 37) reads
//   t_i = G^{-1}( G'(t_{i-1}) (1-F(t_{i-2}))/f(t_{i-1})
//               + beta ((1-F(t_{i-1}))/f(t_{i-1}) - t_{i-1}) ).
// With G(x) = alpha x + gamma this reduces exactly to Eq. (11); a test
// enforces the reduction.

#include <memory>
#include <string>

#include "core/expected_cost.hpp"
#include "core/recurrence.hpp"
#include "core/sequence.hpp"
#include "dist/distribution.hpp"

namespace sre::core {

/// A convex, strictly increasing reservation-cost function G on [0, inf).
class ConvexCostFunction {
 public:
  virtual ~ConvexCostFunction() = default;

  [[nodiscard]] virtual double value(double x) const = 0;       ///< G(x)
  [[nodiscard]] virtual double derivative(double x) const = 0;  ///< G'(x)

  /// G^{-1}(y). The default inverts numerically (bracket + Brent), relying
  /// on strict monotonicity; closed-form overrides are provided where cheap.
  [[nodiscard]] virtual double inverse(double y) const;

  [[nodiscard]] virtual std::string describe() const = 0;
};

/// G(x) = alpha x + gamma (the paper's base model, for cross-validation).
class AffineCost final : public ConvexCostFunction {
 public:
  AffineCost(double alpha, double gamma);
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative(double x) const override;
  [[nodiscard]] double inverse(double y) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double alpha_;
  double gamma_;
};

/// G(x) = a x^2 + b x + c with a >= 0, b > 0: superlinear pricing, e.g. a
/// platform charging a premium for long exclusive reservations.
class QuadraticCost final : public ConvexCostFunction {
 public:
  QuadraticCost(double a, double b, double c);
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative(double x) const override;
  [[nodiscard]] double inverse(double y) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double a_, b_, c_;
};

/// G(x) = alpha x + gamma + kappa (e^{rho x} - 1): exponential surcharge
/// modelling steeply rising prices for very long reservations.
class ExponentialSurchargeCost final : public ConvexCostFunction {
 public:
  ExponentialSurchargeCost(double alpha, double gamma, double kappa,
                           double rho);
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative(double x) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double alpha_, gamma_, kappa_, rho_;
};

/// Expected cost of a sequence under convex G (analytic series with the same
/// truncation and implicit-doubling-tail rules as expected_cost_analytic).
double convex_expected_cost(const ReservationSequence& seq,
                            const dist::Distribution& d,
                            const ConvexCostFunction& g, double beta,
                            const AnalyticOptions& opts = {});

/// Eq. (37) sequence generation from t1 (convex analogue of
/// sequence_from_t1).
RecurrenceResult convex_sequence_from_t1(const dist::Distribution& d,
                                         const ConvexCostFunction& g,
                                         double beta, double t1,
                                         const RecurrenceOptions& opts = {});

/// Grid search over t1 using the convex recurrence + analytic evaluation.
struct ConvexSearchResult {
  bool found = false;
  double best_t1 = 0.0;
  double best_cost = 0.0;
  ReservationSequence best_sequence;
};
ConvexSearchResult convex_brute_force(const dist::Distribution& d,
                                      const ConvexCostFunction& g, double beta,
                                      double search_hi,
                                      std::size_t grid_points = 1000);

}  // namespace sre::core
