#include "core/scenario_sweep.hpp"

#include <map>
#include <memory>

namespace sre::core {

std::vector<SweepScenario> make_scenario_grid(
    const std::vector<dist::PaperInstance>& dists,
    const std::vector<std::pair<std::string, CostModel>>& models,
    const std::vector<HeuristicPtr>& solvers) {
  std::vector<SweepScenario> grid;
  grid.reserve(dists.size() * models.size() * solvers.size());
  for (const auto& inst : dists) {
    for (const auto& [model_label, model] : models) {
      for (const auto& solver : solvers) {
        grid.push_back({inst.label, inst.dist, model_label, model, solver});
      }
    }
  }
  return grid;
}

namespace {

using CacheMap =
    std::map<const dist::Distribution*, std::unique_ptr<dist::CdfCache>>;

// One CdfCache per distinct distribution instance, created up front so
// workers only ever read the map. The caches own their distribution, so
// pointer keys cannot dangle or alias.
CacheMap build_caches(const std::vector<SweepScenario>& scenarios) {
  CacheMap caches;
  for (const auto& sc : scenarios) {
    auto& slot = caches[sc.dist.get()];
    if (!slot) slot = std::make_unique<dist::CdfCache>(sc.dist);
  }
  return caches;
}

ScenarioOutcome run_one_scenario(const SweepScenario& sc,
                                 const EvaluationOptions& eval,
                                 const CacheMap& caches,
                                 sim::CancelToken cancel) {
  GenerateContext ctx;
  ctx.cdf_cache = caches.at(sc.dist.get()).get();
  ctx.cancel = std::move(cancel);
  ScenarioOutcome out;
  out.dist_label = sc.dist_label;
  out.model_label = sc.model_label;
  out.solver = sc.solver->name();
  out.eval = evaluate_heuristic(*sc.solver, *sc.dist, sc.model, eval, ctx);
  return out;
}

void fold_cache_counters(const CacheMap& caches, CdfCacheCounters& out) {
  for (const auto& [ptr, cache] : caches) {
    (void)ptr;
    const auto lookups = cache->lookup_counters();
    const auto stats = cache->stats();
    out.hits += lookups.hits;
    out.misses += lookups.misses;
    out.tables_built += stats.builds;
    out.table_reuses += stats.reuses;
  }
}

}  // namespace

ScenarioSweepReport run_scenario_sweep(
    const std::vector<SweepScenario>& scenarios, const EvaluationOptions& eval,
    const sim::SweepOptions& opts) {
  const CacheMap caches = build_caches(scenarios);

  ScenarioSweepReport report;
  sim::SweepRunner runner(opts);
  report.outcomes = runner.run<ScenarioOutcome>(
      scenarios.size(), [&](std::size_t i) {
        return run_one_scenario(scenarios[i], eval, caches, {});
      });
  report.sweep = runner.counters();
  fold_cache_counters(caches, report.cache);
  return report;
}

ScenarioSweepReport run_scenario_sweep_resilient(
    const std::vector<SweepScenario>& scenarios, const EvaluationOptions& eval,
    const sim::SweepOptions& opts, const ResilientSweepOptions& res) {
  const CacheMap caches = build_caches(scenarios);

  ScenarioSweepReport report;
  sim::SweepRunner runner(opts);
  sim::ResilientSweep<ScenarioOutcome> rs = runner.run_resilient<ScenarioOutcome>(
      scenarios.size(), res.resilience,
      [&](std::size_t i, const sim::AttemptContext& attempt) {
        // Injection precedes evaluation, so a scenario that survives its
        // fault draws computes exactly what the fault-free sweep computes.
        res.faults.for_scenario(i).inject_scenario_entry(attempt.attempt,
                                                         attempt.cancel);
        return run_one_scenario(scenarios[i], eval, caches, attempt.cancel);
      });
  report.outcomes = std::move(rs.results);
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    if (rs.ok[i] != 0) continue;
    // Failed slots keep their grid identity so partial reports stay aligned.
    report.outcomes[i].dist_label = scenarios[i].dist_label;
    report.outcomes[i].model_label = scenarios[i].model_label;
    report.outcomes[i].solver = scenarios[i].solver->name();
    report.outcomes[i].ok = false;
  }
  report.failures = std::move(rs.report);
  report.sweep = runner.counters();
  fold_cache_counters(caches, report.cache);
  return report;
}

}  // namespace sre::core
