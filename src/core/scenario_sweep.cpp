#include "core/scenario_sweep.hpp"

#include <map>
#include <memory>

namespace sre::core {

std::vector<SweepScenario> make_scenario_grid(
    const std::vector<dist::PaperInstance>& dists,
    const std::vector<std::pair<std::string, CostModel>>& models,
    const std::vector<HeuristicPtr>& solvers) {
  std::vector<SweepScenario> grid;
  grid.reserve(dists.size() * models.size() * solvers.size());
  for (const auto& inst : dists) {
    for (const auto& [model_label, model] : models) {
      for (const auto& solver : solvers) {
        grid.push_back({inst.label, inst.dist, model_label, model, solver});
      }
    }
  }
  return grid;
}

ScenarioSweepReport run_scenario_sweep(
    const std::vector<SweepScenario>& scenarios, const EvaluationOptions& eval,
    const sim::SweepOptions& opts) {
  // One CdfCache per distinct distribution instance, created up front so
  // workers only ever read the map. The caches own their distribution, so
  // pointer keys cannot dangle or alias.
  std::map<const dist::Distribution*, std::unique_ptr<dist::CdfCache>> caches;
  for (const auto& sc : scenarios) {
    auto& slot = caches[sc.dist.get()];
    if (!slot) slot = std::make_unique<dist::CdfCache>(sc.dist);
  }

  ScenarioSweepReport report;
  sim::SweepRunner runner(opts);
  report.outcomes = runner.run<ScenarioOutcome>(
      scenarios.size(), [&](std::size_t i) {
        const SweepScenario& sc = scenarios[i];
        GenerateContext ctx;
        ctx.cdf_cache = caches.at(sc.dist.get()).get();
        ScenarioOutcome out;
        out.dist_label = sc.dist_label;
        out.model_label = sc.model_label;
        out.solver = sc.solver->name();
        out.eval = evaluate_heuristic(*sc.solver, *sc.dist, sc.model, eval, ctx);
        return out;
      });
  report.sweep = runner.counters();

  for (const auto& [ptr, cache] : caches) {
    (void)ptr;
    const auto lookups = cache->lookup_counters();
    const auto stats = cache->stats();
    report.cache.hits += lookups.hits;
    report.cache.misses += lookups.misses;
    report.cache.tables_built += stats.builds;
    report.cache.table_reuses += stats.reuses;
  }
  return report;
}

}  // namespace sre::core
