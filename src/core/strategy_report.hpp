#pragma once

// Risk analysis of a reservation strategy. The expected cost (Eq. 4) is the
// paper's objective, but a user committing to a plan also wants the spread:
// the distribution of the number of attempts, the cost quantiles (the cost
// is a nondecreasing function of the job size, so cost quantiles are the
// image of job-size quantiles), the cost standard deviation, and the
// machine time expected to be burnt by failed attempts.

#include <vector>

#include "core/cost_model.hpp"
#include "core/sequence.hpp"
#include "dist/distribution.hpp"

namespace sre::core {

struct StrategyReport {
  double expected_cost = 0.0;       ///< Eq. (4)
  double cost_stddev = 0.0;         ///< sqrt(E[C^2] - E[C]^2)
  double expected_attempts = 0.0;   ///< sum_i P(X > t_i) + 1-ish
  double expected_waste = 0.0;      ///< E[machine time of failed attempts]
  /// attempts_pmf[k] = P(exactly k+1 reservations are paid); truncated once
  /// the residual mass drops below 1e-12 (implicit tail included).
  std::vector<double> attempts_pmf;
  /// (probability, cost) pairs for the requested quantiles.
  std::vector<std::pair<double, double>> cost_quantiles;
};

struct ReportOptions {
  std::vector<double> quantiles = {0.5, 0.9, 0.99};
  /// Bucket cap for the variance integration (implicit tail included).
  std::size_t max_buckets = 512;
  double tail_sf_tol = 1e-13;
};

/// Full report; every quantity is exact up to quadrature/tail tolerance
/// (no Monte Carlo).
StrategyReport analyze_strategy(const ReservationSequence& seq,
                                const dist::Distribution& d,
                                const CostModel& m,
                                const ReportOptions& opts = {});

/// Cost at job-size quantile p: cost_for(Q_X(p)) -- valid because the
/// per-job cost is nondecreasing in the job size.
double cost_quantile(const ReservationSequence& seq,
                     const dist::Distribution& d, const CostModel& m,
                     double p);

}  // namespace sre::core
