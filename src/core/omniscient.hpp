#pragma once

// The omniscient baseline of Section 5.1: a scheduler that knows the job
// duration t in advance makes a single reservation of exactly t, paying
// (alpha + beta) t + gamma; in expectation E^o = (alpha+beta) E[X] + gamma.
// Every reported result in the paper is normalized by E^o, so the normalized
// ratio is >= 1 and smaller is better.

#include "core/cost_model.hpp"
#include "dist/distribution.hpp"

namespace sre::core {

/// E^o = (alpha + beta) * E[X] + gamma.
double omniscient_cost(const dist::Distribution& d, const CostModel& m);

/// expected / E^o; the paper's reporting convention.
double normalized_cost(double expected, const dist::Distribution& d,
                       const CostModel& m);

}  // namespace sre::core
