#pragma once

// Expected cost of a reservation sequence, by two independent routes:
//
//  * expected_cost_analytic -- the Theorem 1 closed form (Eq. 4)
//        E(S) = beta E[X] + sum_{i>=0} (alpha t_{i+1} + beta t_i + gamma) P(X > t_i),
//    evaluated with compensated summation and the implicit doubling tail for
//    sequences whose stored part does not yet exhaust the distribution.
//
//  * expected_cost_monte_carlo -- the paper's evaluation methodology
//    (Eq. 13): average cost over N sampled execution times.
//
// The two agree to Monte-Carlo accuracy; the tests enforce it.

#include "core/cost_model.hpp"
#include "core/sequence.hpp"
#include "dist/distribution.hpp"
#include "sim/monte_carlo.hpp"

namespace sre::core {

struct AnalyticOptions {
  /// Stop accumulating the series once the survival weight drops below this.
  double tail_sf_tol = 1e-15;
  /// Hard cap on series terms (stored + implicit) as a runaway guard.
  std::size_t max_terms = 100000;
};

/// Eq. (4). Requires a nonempty sequence and a valid cost model.
double expected_cost_analytic(const ReservationSequence& seq,
                              const dist::Distribution& d, const CostModel& m,
                              const AnalyticOptions& opts = {});

/// Eq. (13): Monte-Carlo estimate over opts.samples draws.
sim::MonteCarloResult expected_cost_monte_carlo(
    const ReservationSequence& seq, const dist::Distribution& d,
    const CostModel& m, const sim::MonteCarloOptions& opts = {});

}  // namespace sre::core
