#include "core/variable_resources.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <memory>

#include "core/expected_cost.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "dist/transform.hpp"

namespace sre::core {

double AmdahlModel::time_factor(std::size_t processors) const noexcept {
  assert(processors >= 1);
  return sequential_fraction +
         (1.0 - sequential_fraction) / static_cast<double>(processors);
}

CostModel cost_model_for(const VariableResourceOptions& opts,
                         std::size_t processors) {
  const double p = static_cast<double>(processors);
  switch (opts.pricing) {
    case ResourcePricing::kCpuHours:
      return CostModel{opts.base.alpha * p, opts.base.beta * p,
                       opts.base.gamma};
    case ResourcePricing::kTurnaround:
      return CostModel{
          opts.base.alpha * (1.0 + opts.contention * std::log(p)),
          opts.base.beta, opts.base.gamma};
  }
  return opts.base;
}

std::vector<ProcessorPlan> processor_sweep(
    const dist::Distribution& work, const VariableResourceOptions& opts) {
  assert(!opts.candidates.empty());
  std::vector<ProcessorPlan> out;
  out.reserve(opts.candidates.size());

  // The sweep needs a shared_ptr of the work law for ScaledDistribution; a
  // non-owning aliasing pointer avoids copying the caller's object.
  const dist::DistributionPtr work_ref(std::shared_ptr<void>(), &work);

  for (const std::size_t p : opts.candidates) {
    ProcessorPlan plan;
    plan.processors = p;
    plan.time_factor = opts.amdahl.time_factor(p);
    const dist::ScaledDistribution runtime(work_ref, plan.time_factor);
    const CostModel model = cost_model_for(opts, p);
    const DiscretizedDp planner(opts.planner);
    plan.sequence = planner.generate(runtime, model);
    plan.expected_cost = expected_cost_analytic(plan.sequence, runtime, model);
    out.push_back(std::move(plan));
  }
  return out;
}

ProcessorPlan optimize_processors(const dist::Distribution& work,
                                  const VariableResourceOptions& opts) {
  const auto sweep = processor_sweep(work, opts);
  const ProcessorPlan* best = &sweep.front();
  for (const auto& plan : sweep) {
    if (plan.expected_cost < best->expected_cost * (1.0 - 1e-12)) {
      best = &plan;
    }
  }
  return *best;
}

}  // namespace sre::core
