#include "core/expected_cost.hpp"

#include <cassert>

#include "stats/summary.hpp"

namespace sre::core {

double expected_cost_analytic(const ReservationSequence& seq,
                              const dist::Distribution& d, const CostModel& m,
                              const AnalyticOptions& opts) {
  assert(!seq.empty() && m.valid());
  const auto& t = seq.values();
  stats::KahanSum sum;
  sum.add(m.beta * d.mean());

  // i = 0 term: t_0 = 0, P(X > 0) may be < 1 only for laws with an atom at 0
  // (none here), but use sf(0) anyway for generality.
  double prev = 0.0;       // t_i
  double sf_prev = d.sf(0.0);  // P(X > t_i)
  std::size_t terms = 0;
  auto add_term = [&](double next) {
    sum.add((m.alpha * next + m.beta * prev + m.gamma) * sf_prev);
    prev = next;
    sf_prev = d.sf(next);
    ++terms;
  };

  for (const double v : t) {
    add_term(v);
    if (sf_prev <= opts.tail_sf_tol || terms >= opts.max_terms) break;
  }
  // Implicit doubling tail for distributions the stored part does not
  // exhaust. Contributes O(sf(last) * cost-scale), i.e. negligibly, when the
  // generator met its coverage target; it exists for exactness.
  while (sf_prev > opts.tail_sf_tol && terms < opts.max_terms) {
    add_term(prev * 2.0);
  }
  return sum.value();
}

sim::MonteCarloResult expected_cost_monte_carlo(
    const ReservationSequence& seq, const dist::Distribution& d,
    const CostModel& m, const sim::MonteCarloOptions& opts) {
  assert(!seq.empty() && m.valid());
  const SequenceCostEvaluator eval(seq, m);
  return sim::estimate_expectation(
      d, [&eval](double t) { return eval.cost(t); }, opts);
}

}  // namespace sre::core
