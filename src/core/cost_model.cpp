#include "core/cost_model.hpp"

#include <algorithm>
#include <sstream>

namespace sre::core {

double CostModel::attempt_cost(double reserved, double exec) const noexcept {
  return alpha * reserved + beta * std::min(reserved, exec) + gamma;
}

std::string CostModel::describe() const {
  std::ostringstream os;
  os << "CostModel(alpha=" << alpha << ", beta=" << beta << ", gamma=" << gamma
     << ")";
  return os.str();
}

}  // namespace sre::core
