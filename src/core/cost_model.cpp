#include "core/cost_model.hpp"

#include <algorithm>
#include <sstream>

#include "stats/canonical.hpp"

namespace sre::core {

double CostModel::attempt_cost(double reserved, double exec) const noexcept {
  return alpha * reserved + beta * std::min(reserved, exec) + gamma;
}

std::string CostModel::describe() const {
  std::ostringstream os;
  os << "CostModel(alpha=" << alpha << ", beta=" << beta << ", gamma=" << gamma
     << ")";
  return os.str();
}

std::string CostModel::to_key() const {
  return "cost(alpha=" + stats::canonical_key_double(alpha, "cost.alpha") +
         ",beta=" + stats::canonical_key_double(beta, "cost.beta") +
         ",gamma=" + stats::canonical_key_double(gamma, "cost.gamma") + ")";
}

}  // namespace sre::core
