#pragma once

// Checkpointed reservations -- the extension sketched in the paper's
// conclusion ("include checkpoint snapshots at the end of some, if not all,
// reservations"), implemented here in its always-checkpoint form.
//
// Model. A checkpoint written at the end of a reservation costs C time
// units inside that reservation; a restart (reading the latest checkpoint)
// costs R time units at the beginning of every reservation except the
// first. Work is cumulative: after i failed reservations the job has banked
//   W_i = sum_{j<=i} (t_j - R_j - C),   R_1 = 0, R_j = R otherwise,
// and reservation i succeeds iff the remaining work fits in its work
// window: X - W_{i-1} <= t_i - R_i - C, i.e. X <= W_i. (The checkpoint slot
// is provisioned whether or not the job finishes; a job that would only
// finish inside the checkpoint window counts as a failure -- a conservative
// simplification that keeps the success predicate aligned with the banked
// work, so the dynamic program below is exact for discrete laws.)
// The money cost of a reservation is still Eq. (1): alpha*t + beta*used +
// gamma, where a failed reservation uses all of t (restore + work +
// checkpoint) and the successful one uses R_k + (X - W_{k-1}).
//
// The trade-off the paper anticipates: without checkpoints every failure
// restarts from scratch (work is wasted), but no time is spent writing
// checkpoints; with checkpoints failures are cheap but every reservation
// carries the C (and later R) overhead. See bench/ext_checkpoint for the
// crossover study.

#include <optional>
#include <vector>

#include "core/cost_model.hpp"
#include "core/sequence.hpp"
#include "dist/discrete.hpp"
#include "dist/distribution.hpp"
#include "sim/discretize.hpp"

namespace sre::core {

/// Checkpoint/restart overheads, in the same time unit as reservations.
struct CheckpointModel {
  double checkpoint_cost = 0.0;  ///< C: written at the end of a reservation
  double restart_cost = 0.0;     ///< R: read at the start of retries

  [[nodiscard]] bool valid() const noexcept {
    return checkpoint_cost >= 0.0 && restart_cost >= 0.0;
  }
};

/// A checkpointed plan: reservation lengths plus the derived work ledger.
class CheckpointSequence {
 public:
  /// Builds the ledger from raw reservation lengths. Every reservation must
  /// bank positive work (t_i > R_i + C); returns nullopt otherwise.
  static std::optional<CheckpointSequence> from_reservations(
      std::vector<double> reservations, const CheckpointModel& ckpt);

  /// Builds reservations from cumulative work targets 0 < w_1 < w_2 < ...:
  /// t_i = (w_i - w_{i-1}) + R_i + C. A job of size X finishes in the first
  /// reservation whose target satisfies w_i >= X.
  static CheckpointSequence from_work_targets(
      const std::vector<double>& targets, const CheckpointModel& ckpt);

  [[nodiscard]] const std::vector<double>& reservations() const noexcept {
    return reservations_;
  }
  /// Cumulative banked work W_i; also the coverage of reservation i (the
  /// largest job it can finish). Strictly increasing.
  [[nodiscard]] const std::vector<double>& banked_work() const noexcept {
    return banked_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return reservations_.size();
  }
  [[nodiscard]] const CheckpointModel& model() const noexcept { return ckpt_; }

  /// Total money cost for a job of size X (walks the ledger; jobs beyond
  /// the last coverage point continue with doubled work increments).
  [[nodiscard]] double cost_for(double x, const CostModel& m) const;

  /// Number of reservations paid for a job of size X.
  [[nodiscard]] std::size_t attempts_for(double x) const;

 private:
  std::vector<double> reservations_;
  std::vector<double> banked_;
  CheckpointModel ckpt_;
};

/// Exact expected cost of a checkpointed plan under the law `d` (bucket
/// decomposition with closed-form partial expectations). Jobs beyond the
/// stored coverage continue on the implicit doubled-work tail.
double checkpoint_expected_cost(const CheckpointSequence& seq,
                                const dist::Distribution& d,
                                const CostModel& m);

/// Theorem-5-style O(n^2) dynamic program for a *discrete* law under the
/// always-checkpoint model: states are secured work levels (0 or a support
/// point), transitions pick the next coverage target. Optimal among plans
/// whose coverage targets are support points.
struct CheckpointDpResult {
  CheckpointSequence sequence;
  double expected_cost = 0.0;
  std::vector<std::size_t> targets;  ///< chosen support indices, increasing
};
CheckpointDpResult checkpoint_dp(const dist::DiscreteDistribution& d,
                                 const CostModel& m,
                                 const CheckpointModel& ckpt);

/// Simple heuristic: work targets double from the mean
/// (w_i = 2^{i-1} * E[X]) until the law is covered -- the checkpointed
/// analogue of MEAN-DOUBLING.
CheckpointSequence checkpoint_mean_doubling(const dist::Distribution& d,
                                            const CheckpointModel& ckpt,
                                            double coverage_sf = 1e-12,
                                            std::size_t max_length = 128);

/// Fixed work quantum: targets w_i = i * quantum until coverage. The sweep
/// over the quantum (bench/ext_checkpoint_quantum) exhibits the classical
/// checkpoint-interval trade-off: small quanta pay overhead every step,
/// large quanta re-expose work to reservation misses.
CheckpointSequence checkpoint_fixed_quantum(const dist::Distribution& d,
                                            const CheckpointModel& ckpt,
                                            double quantum,
                                            double coverage_sf = 1e-12,
                                            std::size_t max_length = 4096);

/// Near-optimal continuous-law planner: truncate + discretize (Section
/// 4.2.1) and run the work-level DP, then extend the last target by
/// doubling for unbounded laws.
CheckpointSequence checkpoint_discretized_dp(
    const dist::Distribution& d, const CostModel& m,
    const CheckpointModel& ckpt,
    const sim::DiscretizationOptions& disc = {});

/// Coordinate-descent polish of the work targets under the exact
/// continuous expected cost: each target moves to its 1-D minimizer within
/// its neighbours' bracket. Repairs the discretized DP's tail coarseness on
/// heavy-tailed laws (see bench/ext_checkpoint_quantum). Never returns a
/// costlier plan than the input.
struct CheckpointPolishResult {
  CheckpointSequence sequence;
  double cost_before = 0.0;
  double cost_after = 0.0;
};
CheckpointPolishResult polish_checkpoint_targets(
    const CheckpointSequence& seq, const dist::Distribution& d,
    const CostModel& m, std::size_t max_sweeps = 16);

/// Expected-cost comparison of the best restart plan (Theorem 5 DP) vs the
/// best always-checkpoint plan (work-level DP) on the same discretized
/// law. Positive `savings_fraction` means checkpointing wins.
struct CheckpointAdvice {
  double restart_cost = 0.0;      ///< expected cost, no-checkpoint optimum
  double checkpoint_cost = 0.0;   ///< expected cost, always-checkpoint optimum
  bool use_checkpoints = false;
  double savings_fraction = 0.0;  ///< 1 - checkpoint/restart (if positive)
};
CheckpointAdvice advise_checkpointing(const dist::Distribution& d,
                                      const CostModel& m,
                                      const CheckpointModel& ckpt,
                                      const sim::DiscretizationOptions& disc = {});

}  // namespace sre::core
