#include "core/preemption.hpp"

#include <cassert>
#include <cmath>

#include "core/expected_cost.hpp"
#include "stats/integrate.hpp"
#include "stats/root_finding.hpp"
#include "stats/summary.hpp"

namespace sre::core {

namespace {

/// Expected cost spent at one reservation level t for run length u
/// (u = min(t, x)): geometric retries with success prob q = e^{-rate u}.
double level_cost(double t, double u, const CostModel& m,
                  const PreemptionModel& p) {
  if (p.rate <= 0.0) {
    return m.alpha * t + m.gamma + m.beta * u;
  }
  const double q = std::exp(-p.rate * u);
  return (m.alpha * t + m.gamma) / q + m.beta * (1.0 - q) / (p.rate * q);
}

/// Walks the sequence (with the implicit doubling tail) and invokes
/// visit(t_k, covers) for each level until the covering one.
template <typename Visit>
void walk_levels(const ReservationSequence& seq, double x, Visit&& visit) {
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const bool covers = x <= seq[i];
    visit(seq[i], covers);
    if (covers) return;
  }
  double cur = seq.last();
  for (;;) {
    cur *= 2.0;
    const bool covers = x <= cur;
    visit(cur, covers);
    if (covers) return;
  }
}

}  // namespace

double preempted_cost_for(const ReservationSequence& seq, double x,
                          const CostModel& m, const PreemptionModel& p) {
  assert(!seq.empty() && m.valid() && p.valid() && x > 0.0);
  double total = 0.0;
  walk_levels(seq, x, [&](double t, bool covers) {
    total += level_cost(t, covers ? x : t, m, p);
  });
  return total;
}

double preemption_expected_cost(const ReservationSequence& seq,
                                const dist::Distribution& d,
                                const CostModel& m, const PreemptionModel& p) {
  assert(!seq.empty() && m.valid() && p.valid());
  // Bucket decomposition: jobs in (t_{k-1}, t_k] pay the fixed failed-level
  // costs (level_cost at u = t_i for every i < k) plus the covering-level
  // term, which depends on x and is integrated numerically.
  const dist::Support sup = d.support();
  stats::KahanSum sum;
  double prev = 0.0;
  double sf_prev = d.sf(0.0);
  double failed_prefix = 0.0;
  std::size_t stored = 0;
  std::size_t guard = 0;

  while (sf_prev > 1e-13 && guard++ < 4096) {
    const double t_k =
        (stored < seq.size()) ? seq[stored++] : prev * 2.0;
    const double sf_k = d.sf(t_k);
    const double p_bucket = sf_prev - sf_k;
    if (p_bucket > 0.0) {
      sum.add(p_bucket * failed_prefix);
      const double lo = std::fmax(prev, sup.lower);
      const double hi = sup.bounded() ? std::fmin(t_k, sup.upper) : t_k;
      if (hi > lo) {
        // Depth-capped: pdfs with integrable singularities (Weibull
        // kappa<1 at 0) would otherwise grind the adaptive refinement.
        sum.add(stats::integrate(
            [&](double x) {
              const double pdf = d.pdf(x);
              if (!std::isfinite(pdf) || pdf <= 0.0) return 0.0;
              return level_cost(t_k, x, m, p) * pdf;
            },
            lo, hi, 1e-8 * (1.0 + level_cost(t_k, t_k, m, p)), 16));
      }
    }
    failed_prefix += level_cost(t_k, t_k, m, p);
    prev = t_k;
    sf_prev = sf_k;
  }
  return sum.value();
}

double preempted_checkpoint_cost_for(const CheckpointSequence& seq, double x,
                                     const CostModel& m,
                                     const PreemptionModel& p) {
  assert(m.valid() && p.valid() && x > 0.0);
  const CheckpointModel& ckpt = seq.model();
  double total = 0.0;
  double prev_work = 0.0;
  // Stored levels, then an implicit *constant-increment* tail: under
  // preemption the per-level exposure e^{rate*t} punishes growing slots,
  // so the tail repeats the last stored work increment (coverage is still
  // unbounded, arithmetically).
  const auto& banked = seq.banked_work();
  const double tail_step =
      (seq.size() >= 2) ? (banked.back() - banked[seq.size() - 2])
                        : banked.back();
  std::size_t i = 0;
  double tail_target = banked.back();
  for (;;) {
    double t, target, restore;
    if (i < seq.size()) {
      t = seq.reservations()[i];
      target = banked[i];
      restore = (i == 0) ? 0.0 : ckpt.restart_cost;
    } else {
      tail_target += tail_step;
      target = tail_target;
      restore = ckpt.restart_cost;
      t = (target - prev_work) + restore + ckpt.checkpoint_cost;
    }
    const bool covers = x <= target;
    // Success-path occupancy: restore + remaining work (no checkpoint on
    // the final attempt); failure-path: the full slot, to bank the work.
    const double u = covers ? (restore + (x - prev_work)) : t;
    total += level_cost(t, u, m, p);
    if (covers) return total;
    prev_work = target;
    ++i;
  }
}

double preemption_checkpoint_expected_cost(const CheckpointSequence& seq,
                                           const dist::Distribution& d,
                                           const CostModel& m,
                                           const PreemptionModel& p) {
  assert(m.valid() && p.valid() && seq.size() > 0);
  const CheckpointModel& ckpt = seq.model();
  const dist::Support sup = d.support();
  stats::KahanSum sum;
  double prev_work = 0.0;
  double sf_prev = d.sf(0.0);
  double failed_prefix = 0.0;
  std::size_t stored = 0;
  const auto& banked = seq.banked_work();
  const double tail_step =
      (seq.size() >= 2) ? (banked.back() - banked[seq.size() - 2])
                        : banked.back();
  double tail_target = banked.back();
  std::size_t guard = 0;

  while (sf_prev > 1e-13 && guard++ < 65536) {
    double t, target, restore;
    if (stored < seq.size()) {
      t = seq.reservations()[stored];
      target = banked[stored];
      restore = (stored == 0) ? 0.0 : ckpt.restart_cost;
      ++stored;
    } else {
      tail_target += tail_step;
      target = tail_target;
      restore = ckpt.restart_cost;
      t = (target - prev_work) + restore + ckpt.checkpoint_cost;
    }
    const double sf_k = d.sf(target);
    const double p_bucket = sf_prev - sf_k;
    if (p_bucket > 0.0) {
      sum.add(p_bucket * failed_prefix);
      const double lo = std::fmax(prev_work, sup.lower);
      const double hi = sup.bounded() ? std::fmin(target, sup.upper) : target;
      if (hi > lo) {
        const double w0 = prev_work;  // captured secured work
        sum.add(stats::integrate(
            [&, w0, restore, t](double x) {
              const double pdf = d.pdf(x);
              if (!std::isfinite(pdf) || pdf <= 0.0) return 0.0;
              return level_cost(t, restore + (x - w0), m, p) * pdf;
            },
            lo, hi, 1e-8 * (1.0 + level_cost(t, t, m, p)), 16));
      }
    }
    failed_prefix += level_cost(t, t, m, p);
    prev_work = target;
    sf_prev = sf_k;
  }
  return sum.value();
}

PreemptionCheckpointPlanResult optimize_preemption_checkpoint_plan(
    const CheckpointSequence& seed, const dist::Distribution& d,
    const CostModel& m, const PreemptionModel& p, std::size_t max_sweeps) {
  PreemptionCheckpointPlanResult out;
  const CheckpointModel ckpt = seed.model();
  std::vector<double> targets = seed.banked_work();
  const auto cost_of = [&](const std::vector<double>& w) {
    return preemption_checkpoint_expected_cost(
        CheckpointSequence::from_work_targets(w, ckpt), d, m, p);
  };
  out.cost_before = cost_of(targets);
  double current = out.cost_before;
  const dist::Support sup = d.support();

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    const double at_start = current;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const double lo =
          ((i == 0) ? 0.0 : targets[i - 1]) * (1.0 + 1e-12) + 1e-9;
      const double hi = (i + 1 < targets.size())
                            ? targets[i + 1] * (1.0 - 1e-12)
                            : (sup.bounded() ? sup.upper : targets[i] * 4.0);
      if (!(hi > lo)) continue;
      const double saved = targets[i];
      const auto objective = [&](double w) {
        targets[i] = w;
        return cost_of(targets);
      };
      const stats::MinimizeResult min =
          stats::grid_then_golden(objective, lo, hi, 20, 1e-9 * (hi - lo));
      if (min.fx < current) {
        targets[i] = min.x;
        current = min.fx;
      } else {
        targets[i] = saved;
      }
    }
    for (std::size_t i = 0; i < targets.size() && targets.size() > 1;) {
      std::vector<double> reduced(targets);
      reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(i));
      if (sup.bounded() && reduced.back() < sup.upper) {
        ++i;
        continue;
      }
      const double c = cost_of(reduced);
      if (c <= current) {
        targets = std::move(reduced);
        current = c;
      } else {
        ++i;
      }
    }
    if (at_start - current <= 1e-8 * std::fabs(at_start)) break;
  }
  out.sequence = CheckpointSequence::from_work_targets(targets, ckpt);
  out.cost_after = current;
  return out;
}

PreemptionPlanResult optimize_preemption_plan(const ReservationSequence& seed,
                                              const dist::Distribution& d,
                                              const CostModel& m,
                                              const PreemptionModel& p,
                                              std::size_t max_sweeps) {
  PreemptionPlanResult out;
  std::vector<double> values = seed.values();
  const auto cost_of = [&](const std::vector<double>& v) {
    return preemption_expected_cost(ReservationSequence(v), d, m, p);
  };
  out.cost_before = cost_of(values);
  double current = out.cost_before;
  const dist::Support sup = d.support();

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    const double at_start = current;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double lo = (i == 0) ? 1e-9 : values[i - 1] * (1.0 + 1e-12);
      const double hi = (i + 1 < values.size())
                            ? values[i + 1] * (1.0 - 1e-12)
                            : (sup.bounded() ? sup.upper : values[i] * 4.0);
      if (!(hi > lo)) continue;
      const double saved = values[i];
      const auto objective = [&](double t) {
        values[i] = t;
        return cost_of(values);
      };
      const stats::MinimizeResult min =
          stats::grid_then_golden(objective, lo, hi, 20, 1e-9 * (hi - lo));
      if (min.fx < current) {
        values[i] = min.x;
        current = min.fx;
      } else {
        values[i] = saved;
      }
    }
    for (std::size_t i = 0; i < values.size() && values.size() > 1;) {
      std::vector<double> reduced(values);
      reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(i));
      if (sup.bounded() && reduced.back() < sup.upper) {
        ++i;
        continue;
      }
      const double c = cost_of(reduced);
      if (c <= current) {
        values = std::move(reduced);
        current = c;
      } else {
        ++i;
      }
    }
    if (at_start - current <= 1e-8 * std::fabs(at_start)) break;
  }
  out.sequence = ReservationSequence(std::move(values));
  out.cost_after = current;
  return out;
}

}  // namespace sre::core
