#include "core/convex_cost.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "stats/error.hpp"
#include "stats/root_finding.hpp"
#include "stats/summary.hpp"

namespace sre::core {

double ConvexCostFunction::inverse(double y) const {
  // G is strictly increasing; bracket from 0 upward, then Brent. Failures
  // surface as typed kNoConvergence errors, never NaN: a NaN returned here
  // used to flow silently into reservation values downstream.
  const auto f = [this, y](double x) { return value(x) - y; };
  if (f(0.0) >= 0.0) return 0.0;
  const auto bracket = stats::bracket_upward(f, 0.0, 1.0);
  if (!bracket) {
    throw ScenarioError(ErrorCode::kNoConvergence,
                        "ConvexCostFunction.inverse: no upward bracket for y=" +
                            std::to_string(y));
  }
  const auto root = stats::brent(f, bracket->first, bracket->second);
  return stats::require_converged(root, "ConvexCostFunction.inverse").x;
}

AffineCost::AffineCost(double alpha, double gamma)
    : alpha_(alpha), gamma_(gamma) {
  assert(alpha > 0.0 && gamma >= 0.0);
}
double AffineCost::value(double x) const { return alpha_ * x + gamma_; }
double AffineCost::derivative(double) const { return alpha_; }
double AffineCost::inverse(double y) const { return (y - gamma_) / alpha_; }
std::string AffineCost::describe() const {
  std::ostringstream os;
  os << "AffineCost(" << alpha_ << " x + " << gamma_ << ")";
  return os.str();
}

QuadraticCost::QuadraticCost(double a, double b, double c)
    : a_(a), b_(b), c_(c) {
  assert(a >= 0.0 && b > 0.0 && c >= 0.0);
}
double QuadraticCost::value(double x) const { return (a_ * x + b_) * x + c_; }
double QuadraticCost::derivative(double x) const { return 2.0 * a_ * x + b_; }
double QuadraticCost::inverse(double y) const {
  if (a_ == 0.0) return (y - c_) / b_;
  const double disc = b_ * b_ - 4.0 * a_ * (c_ - y);
  if (disc < 0.0) {
    throw ScenarioError(ErrorCode::kDomainError,
                        "QuadraticCost.inverse: " + std::to_string(y) +
                            " is below the minimum of the cost function");
  }
  return (-b_ + std::sqrt(disc)) / (2.0 * a_);
}
std::string QuadraticCost::describe() const {
  std::ostringstream os;
  os << "QuadraticCost(" << a_ << " x^2 + " << b_ << " x + " << c_ << ")";
  return os.str();
}

ExponentialSurchargeCost::ExponentialSurchargeCost(double alpha, double gamma,
                                                   double kappa, double rho)
    : alpha_(alpha), gamma_(gamma), kappa_(kappa), rho_(rho) {
  assert(alpha > 0.0 && gamma >= 0.0 && kappa >= 0.0 && rho > 0.0);
}
double ExponentialSurchargeCost::value(double x) const {
  return alpha_ * x + gamma_ + kappa_ * std::expm1(rho_ * x);
}
double ExponentialSurchargeCost::derivative(double x) const {
  return alpha_ + kappa_ * rho_ * std::exp(rho_ * x);
}
std::string ExponentialSurchargeCost::describe() const {
  std::ostringstream os;
  os << "ExponentialSurchargeCost(" << alpha_ << " x + " << gamma_ << " + "
     << kappa_ << " (e^{" << rho_ << " x} - 1))";
  return os.str();
}

double convex_expected_cost(const ReservationSequence& seq,
                            const dist::Distribution& d,
                            const ConvexCostFunction& g, double beta,
                            const AnalyticOptions& opts) {
  assert(!seq.empty() && beta >= 0.0);
  stats::KahanSum sum;
  sum.add(beta * d.mean());
  double prev = 0.0;
  double sf_prev = d.sf(0.0);
  std::size_t terms = 0;
  auto add_term = [&](double next) {
    sum.add((g.value(next) + beta * prev) * sf_prev);
    prev = next;
    sf_prev = d.sf(next);
    ++terms;
  };
  for (const double v : seq.values()) {
    add_term(v);
    if (sf_prev <= opts.tail_sf_tol || terms >= opts.max_terms) break;
  }
  while (sf_prev > opts.tail_sf_tol && terms < opts.max_terms) {
    add_term(prev * 2.0);
  }
  return sum.value();
}

RecurrenceResult convex_sequence_from_t1(const dist::Distribution& d,
                                         const ConvexCostFunction& g,
                                         double beta, double t1,
                                         const RecurrenceOptions& opts) {
  RecurrenceResult out;
  const dist::Support sup = d.support();
  if (!(t1 > 0.0) || !std::isfinite(t1)) return out;

  std::vector<double> values;
  values.push_back(t1);
  if (sup.bounded() && t1 >= sup.upper) {
    values.back() = sup.upper;
    out.sequence = ReservationSequence(std::move(values));
    out.valid = true;
    return out;
  }

  double t_prev2 = 0.0;
  double t_prev = t1;
  while (values.size() < opts.max_length) {
    const double sf_prev = d.sf(t_prev);
    if (!sup.bounded() && sf_prev <= opts.coverage_sf) break;
    const double density = d.pdf(t_prev);
    if (!(density > 0.0) || !std::isfinite(density)) {
      out.sequence = ReservationSequence(std::move(values));
      out.violation_index = values.size();
      return out;
    }
    const double rhs = g.derivative(t_prev) * d.sf(t_prev2) / density +
                       beta * (sf_prev / density - t_prev);
    double next;
    try {
      next = g.inverse(rhs);
    } catch (const ScenarioError&) {
      // A non-invertible rhs ends this candidate sequence; the t1 scan in
      // convex_brute_force treats it like any other recurrence violation.
      out.sequence = ReservationSequence(std::move(values));
      out.violation_index = values.size();
      return out;
    }
    if (!(next > t_prev) || !std::isfinite(next) || next > opts.value_cap) {
      out.sequence = ReservationSequence(std::move(values));
      out.violation_index = values.size();
      return out;
    }
    if (sup.bounded() && next >= sup.upper) {
      values.push_back(sup.upper);
      out.sequence = ReservationSequence(std::move(values));
      out.valid = true;
      return out;
    }
    values.push_back(next);
    t_prev2 = t_prev;
    t_prev = next;
  }

  if (sup.bounded()) {
    while (values.back() < sup.upper) {
      const double next = std::fmin(sup.upper, values.back() * 2.0);
      if (!(next > values.back())) break;
      values.push_back(next);
    }
    out.valid = values.back() >= sup.upper;
  } else {
    double cur = values.back();
    while (d.sf(cur) > opts.coverage_sf &&
           values.size() < opts.max_length + 64) {
      cur *= 2.0;
      values.push_back(cur);
    }
    out.valid = d.sf(values.back()) <= opts.coverage_sf;
  }
  out.sequence = ReservationSequence(std::move(values));
  return out;
}

ConvexSearchResult convex_brute_force(const dist::Distribution& d,
                                      const ConvexCostFunction& g, double beta,
                                      double search_hi,
                                      std::size_t grid_points) {
  ConvexSearchResult out;
  const double lo = d.support().lower;
  assert(search_hi > lo && grid_points >= 2);
  out.best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i <= grid_points; ++i) {
    const double t1 =
        lo + (search_hi - lo) * static_cast<double>(i) /
                 static_cast<double>(grid_points);
    const RecurrenceResult rec = convex_sequence_from_t1(d, g, beta, t1);
    if (!rec.valid) continue;
    const double cost = convex_expected_cost(rec.sequence, d, g, beta);
    if (cost < out.best_cost) {
      out.best_cost = cost;
      out.best_t1 = t1;
      out.best_sequence = rec.sequence;
      out.found = true;
    }
  }
  return out;
}

}  // namespace sre::core
