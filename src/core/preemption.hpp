#pragma once

// Preemptible (spot-style) reservations. Cloud spot capacity is the price
// motivation behind reservation strategies, and spot instances can be
// *interrupted*: during an attempt, preemptions arrive as a Poisson process
// with rate `rate` on machine time. A preempted attempt is lost (no
// checkpoint) but proves nothing about the reservation length, so the
// policy retries the same length; only a timeout (the job outliving the
// reservation) advances to the next element of the sequence.
//
// For a job of size x at reservation t, each try runs u = min(t, x) unless
// preempted first (T ~ Exp(rate)). With q = e^{-rate*u}:
//   * tries at this level are geometric with success probability q
//     (success = the run completed; it is a timeout if x > t);
//   * expected paid usage per try is E[min(T,u)] = (1-q)/rate;
// so by Wald the expected cost spent at level t is
//   (alpha t + gamma)/q + beta (1-q)/(rate q).
// Summing levels until coverage gives the exact per-job expected cost; the
// expectation over the law is a bucket integration.
//
// rate -> 0 recovers the base model exactly (tested).
//
// Two structural consequences, both verified in the tests and the
// ext_preemption experiment:
//  * Timeouts compound: a level that cannot finish the job still has to
//    *complete its full run uninterrupted* before the strategy learns it
//    was too short, costing e^{rate*t} expected tries. The optimal response
//    is to OVER-reserve (t1 rises with the rate) -- the opposite of the
//    naive "shorter reservations are less exposed" intuition, because idle
//    reserved time carries no preemption exposure in this model.
//  * Divergence: the covering-level cost scales with e^{rate*X}, so the
//    expected cost is finite only when E[e^{rate*X}] is (bounded support;
//    or exponential-type tails with rate below the tail decay). For
//    heavy-tailed laws (LogNormal, Pareto, Weibull kappa<1) the true
//    expected cost is INFINITE for any positive rate without
//    checkpointing; the evaluator's tail truncation then reports a large
//    but truncation-dependent number. This is the classical
//    restart-under-interruption blow-up and the strongest quantitative
//    argument for combining spot capacity with checkpoints
//    (core/checkpoint.*).

#include "core/checkpoint.hpp"
#include "core/cost_model.hpp"
#include "core/sequence.hpp"
#include "dist/distribution.hpp"

namespace sre::core {

struct PreemptionModel {
  double rate = 0.0;  ///< Poisson interruption rate per unit machine time

  [[nodiscard]] bool valid() const noexcept { return rate >= 0.0; }
};

/// Expected total cost for a job of exact size x under the sequence (with
/// the implicit doubling tail), averaging over preemption randomness.
double preempted_cost_for(const ReservationSequence& seq, double x,
                          const CostModel& m, const PreemptionModel& p);

/// Expected cost over the law: bucket decomposition with numerically
/// integrated covering-level terms.
double preemption_expected_cost(const ReservationSequence& seq,
                                const dist::Distribution& d,
                                const CostModel& m, const PreemptionModel& p);

/// Coordinate-descent optimization of a plan under preemption (the Eq. (11)
/// recurrence does not apply: the objective is no longer the Theorem 1
/// series). Seeds from the given plan; never returns a costlier one.
struct PreemptionPlanResult {
  ReservationSequence sequence;
  double cost_before = 0.0;
  double cost_after = 0.0;
};
PreemptionPlanResult optimize_preemption_plan(const ReservationSequence& seed,
                                              const dist::Distribution& d,
                                              const CostModel& m,
                                              const PreemptionModel& p,
                                              std::size_t max_sweeps = 12);

// ---------------------------------------------------------------------------
// Spot + checkpoints: the cure for the divergence above. With checkpointed
// reservations a preemption only loses the current attempt -- banked work
// survives -- so a try at level i must merely survive its own slot
// (probability e^{-rate * t_i}, t_i bounded by the level spacing) and the
// expected cost is finite for ANY law and rate. Semantics follow
// core/checkpoint.hpp exactly; a preempted try retries the same level.
// ---------------------------------------------------------------------------

/// Expected total cost of a checkpointed plan for a job of exact size x
/// under preemptions (averaging over preemption randomness; Wald form per
/// level). Past the stored plan the tail continues with *constant* work
/// increments (repeating the last stored one): growing slots would face
/// e^{rate*t} retry factors, so a doubled-work tail would diverge.
double preempted_checkpoint_cost_for(const CheckpointSequence& seq, double x,
                                     const CostModel& m,
                                     const PreemptionModel& p);

/// Expected cost over the law (bucket decomposition, numeric covering-level
/// integration).
double preemption_checkpoint_expected_cost(const CheckpointSequence& seq,
                                           const dist::Distribution& d,
                                           const CostModel& m,
                                           const PreemptionModel& p);

/// Coordinate-descent optimization of the work targets under preemption.
struct PreemptionCheckpointPlanResult {
  CheckpointSequence sequence;
  double cost_before = 0.0;
  double cost_after = 0.0;
};
PreemptionCheckpointPlanResult optimize_preemption_checkpoint_plan(
    const CheckpointSequence& seed, const dist::Distribution& d,
    const CostModel& m, const PreemptionModel& p, std::size_t max_sweeps = 12);

}  // namespace sre::core
