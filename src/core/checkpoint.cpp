#include "core/checkpoint.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "core/heuristics/dp_discretization.hpp"
#include "stats/root_finding.hpp"
#include "stats/summary.hpp"

namespace sre::core {

namespace {

double restore_cost(const CheckpointModel& ckpt, std::size_t attempt_index) {
  return (attempt_index == 0) ? 0.0 : ckpt.restart_cost;
}

}  // namespace

std::optional<CheckpointSequence> CheckpointSequence::from_reservations(
    std::vector<double> reservations, const CheckpointModel& ckpt) {
  assert(ckpt.valid());
  if (reservations.empty()) return std::nullopt;
  CheckpointSequence out;
  out.ckpt_ = ckpt;
  double banked = 0.0;
  for (std::size_t i = 0; i < reservations.size(); ++i) {
    const double work =
        reservations[i] - restore_cost(ckpt, i) - ckpt.checkpoint_cost;
    if (!(work > 0.0) || !std::isfinite(work)) return std::nullopt;
    banked += work;
    out.banked_.push_back(banked);
  }
  out.reservations_ = std::move(reservations);
  return out;
}

CheckpointSequence CheckpointSequence::from_work_targets(
    const std::vector<double>& targets, const CheckpointModel& ckpt) {
  assert(ckpt.valid() && !targets.empty());
  CheckpointSequence out;
  out.ckpt_ = ckpt;
  double prev = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    assert(targets[i] > prev);
    out.reservations_.push_back(targets[i] - prev + restore_cost(ckpt, i) +
                                ckpt.checkpoint_cost);
    out.banked_.push_back(targets[i]);
    prev = targets[i];
  }
  return out;
}

double CheckpointSequence::cost_for(double x, const CostModel& m) const {
  double total = 0.0;
  double prev_work = 0.0;
  for (std::size_t i = 0; i < reservations_.size(); ++i) {
    const double t = reservations_[i];
    if (x <= banked_[i]) {
      const double used = restore_cost(ckpt_, i) + (x - prev_work);
      return total + m.alpha * t + m.beta * used + m.gamma;
    }
    total += m.alpha * t + m.beta * t + m.gamma;
    prev_work = banked_[i];
  }
  // Implicit tail: work targets double past the last banked level.
  double target = banked_.back();
  std::size_t i = reservations_.size();
  for (;;) {
    const double next_target = target * 2.0;
    const double t = (next_target - target) + restore_cost(ckpt_, i) +
                     ckpt_.checkpoint_cost;
    if (x <= next_target) {
      const double used = restore_cost(ckpt_, i) + (x - target);
      return total + m.alpha * t + m.beta * used + m.gamma;
    }
    total += m.alpha * t + m.beta * t + m.gamma;
    target = next_target;
    ++i;
  }
}

std::size_t CheckpointSequence::attempts_for(double x) const {
  for (std::size_t i = 0; i < banked_.size(); ++i) {
    if (x <= banked_[i]) return i + 1;
  }
  double target = banked_.back();
  std::size_t k = banked_.size();
  while (x > target) {
    target *= 2.0;
    ++k;
  }
  return k;
}

double checkpoint_expected_cost(const CheckpointSequence& seq,
                                const dist::Distribution& d,
                                const CostModel& m) {
  assert(m.valid() && seq.size() > 0);
  const CheckpointModel& ckpt = seq.model();
  stats::KahanSum sum;

  double prev_work = 0.0;         // W_{k-1}
  double sf_prev = d.sf(0.0);     // P(X > W_{k-1})
  double failed_prefix = 0.0;     // sum over failed attempts so far
  std::size_t k = 0;

  auto add_bucket = [&](double t, double work_after) {
    // Bucket: jobs with W_{k-1} < X <= W_k finish in reservation k.
    const double sf_after = d.sf(work_after);
    const double p = sf_prev - sf_after;
    if (p > 0.0) {
      const double r = restore_cost(ckpt, k);
      sum.add(p * (failed_prefix + m.alpha * t + m.gamma +
                   m.beta * (r - prev_work)));
      sum.add(m.beta * d.partial_expectation(prev_work, work_after));
    }
    failed_prefix += (m.alpha + m.beta) * t + m.gamma;
    prev_work = work_after;
    sf_prev = sf_after;
    ++k;
  };

  for (std::size_t i = 0; i < seq.size(); ++i) {
    add_bucket(seq.reservations()[i], seq.banked_work()[i]);
    if (sf_prev <= 1e-15) return sum.value();
  }
  // Implicit doubled-work tail.
  std::size_t guard = 0;
  while (sf_prev > 1e-15 && guard++ < 4096) {
    const double next = prev_work * 2.0;
    const double t =
        (next - prev_work) + restore_cost(ckpt, k) + ckpt.checkpoint_cost;
    add_bucket(t, next);
  }
  return sum.value();
}

CheckpointDpResult checkpoint_dp(const dist::DiscreteDistribution& d,
                                 const CostModel& m,
                                 const CheckpointModel& ckpt) {
  assert(m.valid() && ckpt.valid());
  const auto& v = d.values();
  const auto& f = d.probabilities();
  const std::size_t n = v.size();

  // Suffix mass and weighted mass, as in the plain Theorem 5 DP.
  std::vector<double> S(n + 1, 0.0), Wt(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    S[i] = S[i + 1] + f[i];
    Wt[i] = Wt[i + 1] + f[i] * v[i];
  }

  // E[l] = optimal expected remaining cost given work v_l is secured and
  // X > v_l. Level n means "nothing secured yet" handled separately below.
  std::vector<double> E(n, 0.0);
  std::vector<std::size_t> choice(n, n);

  const auto transition = [&](std::size_t level_idx, bool first,
                              double secured, double cond_mass,
                              std::size_t from_j, double* best,
                              std::size_t* best_j) {
    (void)level_idx;
    const double r = first ? 0.0 : ckpt.restart_cost;
    for (std::size_t j = from_j; j < n; ++j) {
      const double t = (v[j] - secured) + r + ckpt.checkpoint_cost;
      // Success mass: atoms in (secured, v_j].
      const double p_succ = cond_mass - S[j + 1];
      const double e_succ_x = Wt[from_j] - Wt[j + 1];
      double cost = m.alpha * t + m.gamma +
                    m.beta * ((r - secured) * p_succ + e_succ_x) / cond_mass;
      if (S[j + 1] > 0.0) {
        cost += S[j + 1] / cond_mass * (m.beta * t + E[j]);
      }
      if (cost < *best) {
        *best = cost;
        *best_j = j;
      }
      if (S[j + 1] <= 0.0) break;
    }
  };

  for (std::size_t l = n; l-- > 0;) {
    if (S[l + 1] <= 0.0) {
      E[l] = 0.0;  // unreachable with positive probability
      choice[l] = l;
      continue;
    }
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = l + 1;
    transition(l, /*first=*/false, v[l], S[l + 1], l + 1, &best, &best_j);
    E[l] = best;
    choice[l] = best_j;
  }

  double e0 = std::numeric_limits<double>::infinity();
  std::size_t j0 = 0;
  transition(n, /*first=*/true, 0.0, S[0], 0, &e0, &j0);

  CheckpointDpResult out;
  out.expected_cost = e0;
  std::vector<double> targets;
  std::size_t j = j0;
  for (;;) {
    out.targets.push_back(j);
    targets.push_back(v[j]);
    if (S[j + 1] <= 0.0) break;
    j = choice[j];
  }
  out.sequence = CheckpointSequence::from_work_targets(targets, ckpt);
  return out;
}

CheckpointSequence checkpoint_fixed_quantum(const dist::Distribution& d,
                                            const CheckpointModel& ckpt,
                                            double quantum,
                                            double coverage_sf,
                                            std::size_t max_length) {
  assert(quantum > 0.0);
  const dist::Support s = d.support();
  std::vector<double> targets;
  double w = 0.0;
  while (targets.size() < max_length) {
    w += quantum;
    if (s.bounded() && w >= s.upper) {
      targets.push_back(s.upper);
      break;
    }
    targets.push_back(w);
    if (!s.bounded() && d.sf(w) <= coverage_sf) break;
  }
  if (s.bounded() && targets.back() < s.upper) targets.push_back(s.upper);
  return CheckpointSequence::from_work_targets(targets, ckpt);
}

CheckpointSequence checkpoint_discretized_dp(
    const dist::Distribution& d, const CostModel& m,
    const CheckpointModel& ckpt, const sim::DiscretizationOptions& disc) {
  const dist::DiscreteDistribution discrete = sim::discretize(d, disc);
  const CheckpointDpResult dp = checkpoint_dp(discrete, m, ckpt);
  std::vector<double> targets = dp.sequence.banked_work();
  const dist::Support s = d.support();
  if (s.bounded()) {
    if (targets.back() < s.upper) targets.push_back(s.upper);
  } else {
    double cur = targets.back();
    std::size_t guard = 0;
    while (d.sf(cur) > 1e-12 && guard++ < 64) {
      cur *= 2.0;
      targets.push_back(cur);
    }
  }
  return CheckpointSequence::from_work_targets(targets, ckpt);
}

CheckpointPolishResult polish_checkpoint_targets(const CheckpointSequence& seq,
                                                 const dist::Distribution& d,
                                                 const CostModel& m,
                                                 std::size_t max_sweeps) {
  CheckpointPolishResult out;
  const CheckpointModel ckpt = seq.model();
  std::vector<double> targets = seq.banked_work();
  const auto cost_of = [&](const std::vector<double>& w) {
    return checkpoint_expected_cost(
        CheckpointSequence::from_work_targets(w, ckpt), d, m);
  };
  out.cost_before = cost_of(targets);
  double current = out.cost_before;
  const dist::Support sup = d.support();

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    const double at_start = current;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const double lo =
          ((i == 0) ? 0.0 : targets[i - 1]) * (1.0 + 1e-12) + 1e-12;
      double hi = (i + 1 < targets.size())
                      ? targets[i + 1] * (1.0 - 1e-12)
                      : (sup.bounded() ? sup.upper : targets[i] * 4.0);
      if (!(hi > lo)) continue;
      const double saved = targets[i];
      const auto objective = [&](double w) {
        targets[i] = w;
        return cost_of(targets);
      };
      const stats::MinimizeResult min =
          stats::grid_then_golden(objective, lo, hi, 20, 1e-10 * (hi - lo));
      if (min.fx < current) {
        targets[i] = min.x;
        current = min.fx;
      } else {
        targets[i] = saved;
      }
    }
    // Element removal (never break bounded-support coverage).
    for (std::size_t i = 0; i < targets.size() && targets.size() > 1;) {
      std::vector<double> reduced(targets);
      reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(i));
      if (sup.bounded() && reduced.back() < sup.upper) {
        ++i;
        continue;
      }
      const double c = cost_of(reduced);
      if (c <= current) {
        targets = std::move(reduced);
        current = c;
      } else {
        ++i;
      }
    }
    if (at_start - current <= 1e-9 * std::fabs(at_start)) break;
  }
  out.sequence = CheckpointSequence::from_work_targets(targets, ckpt);
  out.cost_after = current;
  return out;
}

CheckpointAdvice advise_checkpointing(const dist::Distribution& d,
                                      const CostModel& m,
                                      const CheckpointModel& ckpt,
                                      const sim::DiscretizationOptions& disc) {
  const dist::DiscreteDistribution discrete = sim::discretize(d, disc);
  CheckpointAdvice out;
  // Both optima are computed on the same discrete law so the comparison is
  // apples to apples.
  out.restart_cost = dp_optimal_sequence(discrete, m).expected_cost;
  out.checkpoint_cost = checkpoint_dp(discrete, m, ckpt).expected_cost;
  out.use_checkpoints = out.checkpoint_cost <= out.restart_cost;
  if (out.restart_cost > 0.0) {
    out.savings_fraction = 1.0 - out.checkpoint_cost / out.restart_cost;
  }
  return out;
}

CheckpointSequence checkpoint_mean_doubling(const dist::Distribution& d,
                                            const CheckpointModel& ckpt,
                                            double coverage_sf,
                                            std::size_t max_length) {
  std::vector<double> targets{d.mean()};
  const dist::Support s = d.support();
  while (targets.size() < max_length) {
    if (s.bounded()) {
      if (targets.back() >= s.upper) break;
      targets.push_back(std::fmin(targets.back() * 2.0, s.upper));
    } else {
      if (d.sf(targets.back()) <= coverage_sf) break;
      targets.push_back(targets.back() * 2.0);
    }
  }
  if (s.bounded() && targets.back() < s.upper) targets.push_back(s.upper);
  return CheckpointSequence::from_work_targets(targets, ckpt);
}

}  // namespace sre::core
