#pragma once

// Theorem 2: for any law with infinite support and finite second moment, the
// optimal first reservation satisfies t1 <= A1 and the optimal expected cost
// is at most A2, where
//   A1 = E[X] + 1 + (alpha+beta)/(2 alpha) (E[X^2] - a^2)
//              + (alpha+beta+gamma)/alpha (E[X] - a)          (Eq. 6)
//   A2 = beta E[X] + alpha A1 + gamma                         (Eq. 7)
// These bound the brute-force search interval for t1.

#include "core/cost_model.hpp"
#include "dist/distribution.hpp"

namespace sre::core {

/// A1 of Eq. (6). For bounded support the trivial bound b is returned
/// instead (a single reservation at b is always available).
double upper_bound_t1(const dist::Distribution& d, const CostModel& m);

/// A2 of Eq. (7) (for bounded support: the cost of the single reservation
/// (b), i.e. alpha*b + beta*E[X] + gamma).
double upper_bound_cost(const dist::Distribution& d, const CostModel& m);

}  // namespace sre::core
