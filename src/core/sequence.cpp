#include "core/sequence.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/summary.hpp"

namespace sre::core {

ReservationSequence::ReservationSequence(std::vector<double> values)
    : values_(std::move(values)) {
  assert(!values_.empty());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    assert(values_[i] > 0.0);
    assert(i == 0 || values_[i] > values_[i - 1]);
  }
}

std::optional<ReservationSequence> ReservationSequence::try_create(
    std::vector<double> values) {
  if (values.empty()) return std::nullopt;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!(values[i] > 0.0) || !std::isfinite(values[i])) return std::nullopt;
    if (i > 0 && !(values[i] > values[i - 1])) return std::nullopt;
  }
  ReservationSequence seq;
  seq.values_ = std::move(values);
  return seq;
}

void ReservationSequence::push_back(double t) {
  assert(t > 0.0 && (values_.empty() || t > values_.back()));
  values_.push_back(t);
}

bool ReservationSequence::covers(double t) const noexcept {
  return !values_.empty() && t <= values_.back();
}

std::size_t ReservationSequence::attempts_for(double t) const noexcept {
  if (values_.empty()) return 0;
  if (t <= values_.back()) {
    const auto it = std::lower_bound(values_.begin(), values_.end(), t);
    return static_cast<std::size_t>(it - values_.begin()) + 1;
  }
  // Implicit doubling tail.
  std::size_t k = values_.size();
  double cur = values_.back();
  while (cur < t) {
    cur *= 2.0;
    ++k;
  }
  return k;
}

double ReservationSequence::cost_for(double t, const CostModel& m) const noexcept {
  if (values_.empty()) return 0.0;
  double total = 0.0;
  for (const double r : values_) {
    total += m.attempt_cost(r, t);
    if (t <= r) return total;
  }
  double cur = values_.back();
  while (t > cur) {
    cur *= 2.0;
    total += m.attempt_cost(cur, t);
  }
  return total;
}

bool ReservationSequence::covers_distribution(const dist::Distribution& d,
                                              double sf_tol) const {
  if (values_.empty()) return false;
  const dist::Support s = d.support();
  if (s.bounded()) return values_.back() >= s.upper;
  return d.sf(values_.back()) <= sf_tol;
}

SequenceCostEvaluator::SequenceCostEvaluator(const ReservationSequence& seq,
                                             const CostModel& m)
    : values_(seq.values()), model_(m) {
  prefix_.resize(values_.size() + 1);
  stats::KahanSum sum;
  prefix_[0] = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    sum.add((model_.alpha + model_.beta) * values_[i] + model_.gamma);
    prefix_[i + 1] = sum.value();
  }
}

double SequenceCostEvaluator::cost(double t) const noexcept {
  if (values_.empty()) return 0.0;
  if (t <= values_.back()) {
    const auto it = std::lower_bound(values_.begin(), values_.end(), t);
    const auto k = static_cast<std::size_t>(it - values_.begin());
    // k failed reservations before the successful one at index k.
    return prefix_[k] + model_.alpha * values_[k] + model_.beta * t +
           model_.gamma;
  }
  // Implicit doubling tail past the stored part.
  double total = prefix_.back();
  double cur = values_.back();
  for (;;) {
    cur *= 2.0;
    if (t <= cur) {
      return total + model_.alpha * cur + model_.beta * t + model_.gamma;
    }
    total += (model_.alpha + model_.beta) * cur + model_.gamma;
  }
}

double SequenceCostEvaluator::mean_cost(std::span<const double> samples) const {
  if (samples.empty()) return 0.0;
  stats::KahanSum sum;
  for (const double t : samples) sum.add(cost(t));
  return sum.value() / static_cast<double>(samples.size());
}

}  // namespace sre::core
