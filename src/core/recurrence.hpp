#pragma once

// The optimality recurrence of Theorem 3 / Proposition 1: in an optimal
// sequence every element after the first is determined by its two
// predecessors,
//
//   t_i = (1 - F(t_{i-2})) / f(t_{i-1})
//       + (beta/alpha) * ((1 - F(t_{i-1})) / f(t_{i-1}) - t_{i-1})
//       - gamma/alpha                                            (Eq. 11)
//
// with t_0 = 0. Solving STOCHASTIC thus reduces to choosing t_1. Not every
// t_1 induces a valid (strictly increasing) sequence -- Fig. 3's gaps -- so
// generation reports validity instead of asserting it.

#include <optional>

#include "core/cost_model.hpp"
#include "core/sequence.hpp"
#include "dist/distribution.hpp"
#include "sim/cancel.hpp"

namespace sre::core {

struct RecurrenceOptions {
  /// Cap on generated elements before the coverage fallback kicks in.
  std::size_t max_length = 512;
  /// Residual tail mass at which the sequence is considered to cover the
  /// distribution (unbounded support).
  double coverage_sf = 1e-12;
  /// Abort: an element beyond this is treated as numerically divergent.
  double value_cap = 1e18;
  /// Cooperative cancellation/deadline token, polled every 64 elements.
  sim::CancelToken cancel{};
};

struct RecurrenceResult {
  ReservationSequence sequence;
  /// True iff every generated element was strictly increasing and the
  /// sequence covers the distribution (bounded: reaches the upper support;
  /// unbounded: tail mass below coverage_sf, extending geometrically past
  /// max_length if the recurrence alone was too slow).
  bool valid = false;
  /// Index (0-based) at which monotonicity first failed, if it did.
  std::optional<std::size_t> violation_index;
};

/// Generates the Eq. (11) sequence starting from t1. For bounded support the
/// sequence stops at the first element >= b (clamped to b), matching the
/// Proposition 1 stopping rule F(t_i) = 1.
RecurrenceResult sequence_from_t1(const dist::Distribution& d,
                                  const CostModel& m, double t1,
                                  const RecurrenceOptions& opts = {});

}  // namespace sre::core
