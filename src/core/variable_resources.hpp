#pragma once

// Variable-resource reservations -- the other extension named in the
// paper's conclusion ("allowing requests with variable amount of resources,
// hence offering a combination of a reservation time and a number of
// processors").
//
// Model. A job has a *sequential work* requirement W drawn from the known
// law D. Run on p processors it takes T = W * f(p), with the Amdahl factor
// f(p) = sigma + (1 - sigma)/p (sigma = non-parallelizable fraction). For a
// fixed p, the runtime law is Scaled(D, f(p)) and the problem collapses to
// STOCHASTIC with a p-dependent cost model, so the whole machinery of this
// library applies per processor count; optimizing p is then an outer 1-D
// search.
//
// Two pricing policies are provided:
//  * CPU-hours: a reservation (p, t) costs alpha*p*t + beta*p*used + gamma.
//    Under Amdahl the work area p*T = W*(sigma*p + 1 - sigma) only grows
//    with p, so p = 1 is provably optimal -- a useful sanity anchor.
//  * Turnaround: the cost is wall-clock time (the NeuroHPC viewpoint):
//    wait + execution, where the queue wait grows both with the requested
//    length (slope alpha) and, mildly, with the requested width
//    (multiplier 1 + contention * ln p). Here p trades Amdahl's
//    diminishing returns against queue contention and an interior optimum
//    appears.

#include <vector>

#include "core/cost_model.hpp"
#include "core/sequence.hpp"
#include "dist/distribution.hpp"
#include "sim/discretize.hpp"

namespace sre::core {

/// Amdahl's law: f(p) = sigma + (1 - sigma)/p.
struct AmdahlModel {
  double sequential_fraction = 0.05;  ///< sigma in [0, 1]

  [[nodiscard]] double time_factor(std::size_t processors) const noexcept;
};

/// How a (p, t) reservation is priced, as a p-dependent Eq. (1) model.
enum class ResourcePricing {
  kCpuHours,    ///< alpha*p*t + beta*p*used + gamma
  kTurnaround,  ///< alpha*(1 + contention ln p)*t + beta*used + gamma
};

struct VariableResourceOptions {
  AmdahlModel amdahl{};
  ResourcePricing pricing = ResourcePricing::kTurnaround;
  /// Queue-contention strength for kTurnaround (0 = width-free waits).
  double contention = 0.25;
  /// Base Eq. (1) parameters (per CPU-hour for kCpuHours; wait model for
  /// kTurnaround).
  CostModel base{1.0, 0.0, 0.0};
  /// Processor counts to evaluate.
  std::vector<std::size_t> candidates = {1, 2, 4, 8, 16, 32, 64, 128};
  /// Planner used at each p (discretized Theorem 5 DP).
  sim::DiscretizationOptions planner{500, 1e-7,
                                     sim::DiscretizationScheme::kEqualProbability};
};

/// The Eq. (1) model seen by the fixed-p subproblem.
CostModel cost_model_for(const VariableResourceOptions& opts,
                         std::size_t processors);

/// Outcome of one processor-count evaluation.
struct ProcessorPlan {
  std::size_t processors = 0;
  double time_factor = 0.0;     ///< f(p)
  double expected_cost = 0.0;   ///< optimal expected cost at this p
  ReservationSequence sequence; ///< reservation *times* at this p
};

/// Evaluates every candidate p. Results are in candidate order.
std::vector<ProcessorPlan> processor_sweep(const dist::Distribution& work,
                                           const VariableResourceOptions& opts);

/// The best candidate (smallest expected cost; ties to fewer processors).
ProcessorPlan optimize_processors(const dist::Distribution& work,
                                  const VariableResourceOptions& opts);

}  // namespace sre::core
