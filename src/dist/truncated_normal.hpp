#pragma once

// TruncatedNormal(mu, sigma^2, a): a Normal(mu, sigma^2) conditioned on
// X >= a (one-sided lower truncation; support [a, inf)). Table 1
// instantiation: mu = 8, sigma^2 = 2, a = 0.
//
// Implementation note: Table 5 of the paper prints the variance as
// sigma^2 (1 + (a-mu)/sigma * eta - eta^2) with
// eta = e^{-alpha^2/2} / (1 - erf(alpha/sqrt2)); the standard (and
// dimensionally consistent) formula uses the inverse Mills ratio
// lambda = sqrt(2/pi) * eta instead of eta. We implement the standard
// formula; the Monte-Carlo property tests confirm it.

#include "dist/distribution.hpp"

namespace sre::dist {

class TruncatedNormal final : public Distribution {
 public:
  TruncatedNormal(double mu, double sigma, double lower);

  [[nodiscard]] double location() const noexcept { return mu_; }
  [[nodiscard]] double scale() const noexcept { return sigma_; }
  [[nodiscard]] double lower() const noexcept { return a_; }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double sf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 private:
  /// Inverse Mills ratio phi(z) / (1 - Phi(z)) of the *untruncated* normal.
  [[nodiscard]] double mills(double z) const;

  double mu_;
  double sigma_;
  double a_;
  double z_tail_;  // 1 - Phi((a - mu)/sigma), the untruncated tail mass
};

}  // namespace sre::dist
