#include "dist/discrete.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <sstream>

#include "stats/summary.hpp"

#include "stats/canonical.hpp"

namespace sre::dist {

DiscreteDistribution::DiscreteDistribution(std::vector<double> values,
                                           std::vector<double> probs)
    : values_(std::move(values)), probs_(std::move(probs)) {
  assert(!values_.empty() && values_.size() == probs_.size());
  stats::KahanSum total;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    assert(values_[i] >= 0.0);
    assert(i == 0 || values_[i] > values_[i - 1]);
    assert(probs_[i] >= 0.0);
    total.add(probs_[i]);
  }
  const double z = total.value();
  assert(z > 0.0);
  cum_.resize(values_.size());
  stats::KahanSum running;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    probs_[i] /= z;
    running.add(probs_[i]);
    cum_[i] = std::fmin(running.value(), 1.0);
  }
  cum_.back() = 1.0;
}

DiscreteDistribution DiscreteDistribution::from_samples(
    std::span<const double> samples) {
  assert(!samples.empty());
  std::map<double, double> hist;
  for (const double s : samples) hist[s] += 1.0;
  std::vector<double> values, probs;
  values.reserve(hist.size());
  probs.reserve(hist.size());
  for (const auto& [v, count] : hist) {
    values.push_back(v);
    probs.push_back(count);
  }
  return DiscreteDistribution(std::move(values), std::move(probs));
}

double DiscreteDistribution::sf(double t) const { return 1.0 - cdf(t); }

double DiscreteDistribution::pdf(double t) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), t);
  if (it != values_.end() && *it == t) {
    return probs_[static_cast<std::size_t>(it - values_.begin())];
  }
  return 0.0;
}

double DiscreteDistribution::cdf(double t) const {
  // Index of the last value <= t.
  const auto it = std::upper_bound(values_.begin(), values_.end(), t);
  if (it == values_.begin()) return 0.0;
  return cum_[static_cast<std::size_t>(it - values_.begin()) - 1];
}

double DiscreteDistribution::quantile(double p) const {
  detail::require_probability(p, "DiscreteDistribution.quantile");
  if (p <= 0.0) return values_.front();
  if (p >= 1.0) return values_.back();
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), p);
  if (it == cum_.end()) return values_.back();
  return values_[static_cast<std::size_t>(it - cum_.begin())];
}

double DiscreteDistribution::mean() const {
  stats::KahanSum s;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    s.add(values_[i] * probs_[i]);
  }
  return s.value();
}

double DiscreteDistribution::variance() const {
  const double m = mean();
  stats::KahanSum s;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    s.add((values_[i] - m) * (values_[i] - m) * probs_[i]);
  }
  return s.value();
}

Support DiscreteDistribution::support() const {
  return Support{values_.front(), values_.back()};
}

double DiscreteDistribution::sample(Rng& rng) const {
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const double u = u01(rng);
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
  if (it == cum_.end()) return values_.back();
  return values_[static_cast<std::size_t>(it - cum_.begin())];
}

double DiscreteDistribution::conditional_mean_above(double tau) const {
  stats::KahanSum num, den;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] > tau) {
      num.add(values_[i] * probs_[i]);
      den.add(probs_[i]);
    }
  }
  if (den.value() <= 0.0) return tau;
  return num.value() / den.value();
}

std::string DiscreteDistribution::name() const { return "Discrete"; }

std::string DiscreteDistribution::describe() const {
  std::ostringstream os;
  os << "Discrete(n=" << values_.size() << ", [" << values_.front() << ", "
     << values_.back() << "])";
  return os.str();
}

std::string DiscreteDistribution::to_key() const {
  std::string key = "discrete(";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) key += ",";
    key += stats::canonical_key_double(values_[i], "discrete.value") + ":" +
           stats::canonical_key_double(probs_[i], "discrete.prob");
  }
  return key + ")";
}

}  // namespace sre::dist
