#pragma once

// Weibull(lambda, kappa) with scale lambda and shape kappa, support [0, inf).
// Table 1 instantiation: lambda = 1, kappa = 0.5 (a heavy-tailed stretch of
// the exponential). MEAN-BY-MEAN closed form (Appendix B, Theorem 6):
//   E[X | X > tau] = lambda * exp((tau/lambda)^kappa)
//                           * Gamma(1 + 1/kappa, (tau/lambda)^kappa).

#include "dist/distribution.hpp"

namespace sre::dist {

class Weibull final : public Distribution {
 public:
  Weibull(double lambda, double kappa);

  [[nodiscard]] double scale() const noexcept { return lambda_; }
  [[nodiscard]] double shape() const noexcept { return kappa_; }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double sf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 protected:
  void do_cdf_batch(std::span<const double> t,
                    std::span<double> out) const override;
  void do_sf_batch(std::span<const double> t,
                   std::span<double> out) const override;
  void do_quantile_batch(std::span<const double> p,
                         std::span<double> out) const override;

 private:
  double lambda_;
  double kappa_;
};

}  // namespace sre::dist
