#include "dist/uniform.hpp"

#include <cassert>
#include <cmath>
#include <sstream>

#include "stats/canonical.hpp"

namespace sre::dist {

Uniform::Uniform(double lower, double upper) : a_(lower), b_(upper) {
  assert(lower < upper);
}

double Uniform::pdf(double t) const {
  if (t < a_ || t > b_) return 0.0;
  return 1.0 / (b_ - a_);
}

double Uniform::cdf(double t) const {
  if (t <= a_) return 0.0;
  if (t >= b_) return 1.0;
  return (t - a_) / (b_ - a_);
}

double Uniform::quantile(double p) const {
  detail::require_probability(p, "Uniform.quantile");
  if (p <= 0.0) return a_;
  if (p >= 1.0) return b_;
  return a_ + p * (b_ - a_);
}

double Uniform::mean() const { return 0.5 * (a_ + b_); }

double Uniform::variance() const {
  const double w = b_ - a_;
  return w * w / 12.0;
}

Support Uniform::support() const { return Support{a_, b_}; }

double Uniform::conditional_mean_above(double tau) const {
  const double t = std::fmax(tau, a_);
  if (t >= b_) return b_;
  return 0.5 * (b_ + t);
}

void Uniform::do_cdf_batch(std::span<const double> t,
                           std::span<double> out) const {
  const double a = a_, b = b_;
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = t[i] <= a ? 0.0 : t[i] >= b ? 1.0 : (t[i] - a) / (b - a);
  }
}

void Uniform::do_quantile_batch(std::span<const double> p,
                                std::span<double> out) const {
  const double a = a_, b = b_;
  for (std::size_t i = 0; i < p.size(); ++i) {
    detail::require_probability(p[i], "Uniform.quantile");
    out[i] = p[i] <= 0.0 ? a : p[i] >= 1.0 ? b : a + p[i] * (b - a);
  }
}

std::string Uniform::name() const { return "Uniform"; }

std::string Uniform::describe() const {
  std::ostringstream os;
  os << "Uniform(a=" << a_ << ", b=" << b_ << ")";
  return os.str();
}

std::string Uniform::to_key() const {
  return "uniform(a=" + stats::canonical_key_double(a_, "uniform.a") +
         ",b=" + stats::canonical_key_double(b_, "uniform.b") + ")";
}

}  // namespace sre::dist
