#pragma once

// Finite discrete distribution X ~ (v_i, f_i)_{i=1..n} with strictly
// increasing support points. This is the input of the Theorem 5 dynamic
// program; it is produced by truncating + discretizing a continuous law
// (Section 4.2.1) or from empirical traces.
//
// Note on survival: the reservation model pays reservation i+1 exactly when
// X > t_i, so sf() here is the *strict* survival P(X > t). With that
// convention the Theorem 1 cost series is exact for atomic laws too.

#include <span>
#include <vector>

#include "dist/distribution.hpp"

namespace sre::dist {

class DiscreteDistribution final : public Distribution {
 public:
  /// `values` strictly increasing and nonnegative, `probs` nonnegative with a
  /// positive sum; probabilities are normalized on construction.
  DiscreteDistribution(std::vector<double> values, std::vector<double> probs);

  /// Empirical distribution of a sample set (values deduplicated & sorted).
  static DiscreteDistribution from_samples(std::span<const double> samples);

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] const std::vector<double>& probabilities() const noexcept {
    return probs_;
  }

  /// P(X > t), exact at atoms.
  [[nodiscard]] double sf(double t) const override;
  /// Probability mass at exactly v (0 for non-atoms); this is *not* a
  /// density, but pdf() is the natural slot for it in the shared interface.
  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 private:
  std::vector<double> values_;
  std::vector<double> probs_;
  std::vector<double> cum_;  // cum_[i] = P(X <= values_[i])
};

}  // namespace sre::dist
