#include "dist/beta.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "stats/special_functions.hpp"

#include "stats/canonical.hpp"

namespace sre::dist {

Beta::Beta(double alpha, double beta)
    : alpha_(alpha), beta_(beta), lbeta_(stats::lbeta(alpha, beta)) {
  assert(alpha > 0.0 && beta > 0.0);
}

double Beta::pdf(double t) const {
  if (t < 0.0 || t > 1.0) return 0.0;
  if (t == 0.0) {
    if (alpha_ < 1.0) return std::numeric_limits<double>::infinity();
    if (alpha_ == 1.0) return std::exp(-lbeta_);
    return 0.0;
  }
  if (t == 1.0) {
    if (beta_ < 1.0) return std::numeric_limits<double>::infinity();
    if (beta_ == 1.0) return std::exp(-lbeta_);
    return 0.0;
  }
  return std::exp((alpha_ - 1.0) * std::log(t) +
                  (beta_ - 1.0) * std::log1p(-t) - lbeta_);
}

double Beta::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  if (t >= 1.0) return 1.0;
  return stats::inc_beta(t, alpha_, beta_);
}

double Beta::quantile(double p) const {
  detail::require_probability(p, "Beta.quantile");
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  return stats::inc_beta_inv(p, alpha_, beta_);
}

double Beta::mean() const { return alpha_ / (alpha_ + beta_); }

double Beta::variance() const {
  const double s = alpha_ + beta_;
  return alpha_ * beta_ / (s * s * (s + 1.0));
}

Support Beta::support() const { return Support{0.0, 1.0}; }

double Beta::conditional_mean_above(double tau) const {
  if (tau <= 0.0) return mean();
  if (tau >= 1.0) return 1.0;
  const double num = stats::inc_beta_unreg(1.0, alpha_ + 1.0, beta_) -
                     stats::inc_beta_unreg(tau, alpha_ + 1.0, beta_);
  const double den = stats::inc_beta_unreg(1.0, alpha_, beta_) -
                     stats::inc_beta_unreg(tau, alpha_, beta_);
  if (den > 0.0) {
    const double value = num / den;
    if (std::isfinite(value) && value >= tau && value <= 1.0) return value;
  }
  return conditional_mean_above_numeric(tau);
}

std::string Beta::name() const { return "Beta"; }

std::string Beta::describe() const {
  std::ostringstream os;
  os << "Beta(alpha=" << alpha_ << ", beta=" << beta_ << ")";
  return os.str();
}

std::string Beta::to_key() const {
  return "beta(alpha=" + stats::canonical_key_double(alpha_, "beta.alpha") +
         ",beta=" + stats::canonical_key_double(beta_, "beta.beta") + ")";
}

}  // namespace sre::dist
