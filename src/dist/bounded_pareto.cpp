#include "dist/bounded_pareto.hpp"

#include <cassert>
#include <cmath>
#include <sstream>

#include "stats/canonical.hpp"

namespace sre::dist {

BoundedPareto::BoundedPareto(double lower, double upper, double alpha)
    : L_(lower), H_(upper), alpha_(alpha),
      norm_(1.0 - std::pow(lower / upper, alpha)) {
  assert(0.0 < lower && lower < upper && alpha > 0.0);
}

double BoundedPareto::pdf(double t) const {
  if (t < L_ || t > H_) return 0.0;
  return alpha_ * std::pow(L_, alpha_) * std::pow(t, -alpha_ - 1.0) / norm_;
}

double BoundedPareto::cdf(double t) const {
  if (t <= L_) return 0.0;
  if (t >= H_) return 1.0;
  return (1.0 - std::pow(L_ / t, alpha_)) / norm_;
}

double BoundedPareto::quantile(double p) const {
  detail::require_probability(p, "BoundedPareto.quantile");
  if (p <= 0.0) return L_;
  if (p >= 1.0) return H_;
  return L_ * std::pow(1.0 - norm_ * p, -1.0 / alpha_);
}

double BoundedPareto::mean() const {
  assert(alpha_ != 1.0);
  const double ha = std::pow(H_, alpha_);
  const double la = std::pow(L_, alpha_);
  return alpha_ / (alpha_ - 1.0) * (ha * L_ - H_ * la) / (ha - la);
}

double BoundedPareto::variance() const {
  assert(alpha_ != 1.0 && alpha_ != 2.0);
  const double ha = std::pow(H_, alpha_);
  const double la = std::pow(L_, alpha_);
  const double m = mean();
  const double ex2 = alpha_ / (alpha_ - 2.0) *
                     (ha * L_ * L_ - H_ * H_ * la) / (ha - la);
  return ex2 - m * m;
}

Support BoundedPareto::support() const { return Support{L_, H_}; }

double BoundedPareto::conditional_mean_above(double tau) const {
  assert(alpha_ > 1.0);
  const double t = std::fmax(tau, L_);
  if (t >= H_) return H_;
  const double num = std::pow(H_, 1.0 - alpha_) - std::pow(t, 1.0 - alpha_);
  const double den = std::pow(H_, -alpha_) - std::pow(t, -alpha_);
  return alpha_ / (alpha_ - 1.0) * num / den;
}

std::string BoundedPareto::name() const { return "BoundedPareto"; }

std::string BoundedPareto::describe() const {
  std::ostringstream os;
  os << "BoundedPareto(L=" << L_ << ", H=" << H_ << ", alpha=" << alpha_
     << ")";
  return os.str();
}

std::string BoundedPareto::to_key() const {
  return "boundedpareto(l=" +
         stats::canonical_key_double(L_, "boundedpareto.l") + ",h=" +
         stats::canonical_key_double(H_, "boundedpareto.h") + ",alpha=" +
         stats::canonical_key_double(alpha_, "boundedpareto.alpha") + ")";
}

}  // namespace sre::dist
