#pragma once

// Affine transforms of distributions. Scaling converts units (the NeuroHPC
// pipeline measures traces in seconds but plans in hours); shifting models
// a fixed startup portion every job pays. Both forward every query to the
// base law in closed form, so the Appendix-B conditional means survive the
// transform.

#include "dist/distribution.hpp"

namespace sre::dist {

/// Y = factor * X, factor > 0.
class ScaledDistribution final : public Distribution {
 public:
  ScaledDistribution(DistributionPtr base, double factor);

  [[nodiscard]] const Distribution& base() const noexcept { return *base_; }
  [[nodiscard]] double factor() const noexcept { return factor_; }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double sf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 private:
  DistributionPtr base_;
  double factor_;
};

/// Y = X + delta, delta >= 0 (execution times stay nonnegative).
class ShiftedDistribution final : public Distribution {
 public:
  ShiftedDistribution(DistributionPtr base, double delta);

  [[nodiscard]] const Distribution& base() const noexcept { return *base_; }
  [[nodiscard]] double shift() const noexcept { return delta_; }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double sf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 private:
  DistributionPtr base_;
  double delta_;
};

}  // namespace sre::dist
