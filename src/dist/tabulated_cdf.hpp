#pragma once

// Memoized CDF/quantile evaluation on the discretization grids of Section
// 4.2.1. The O(n^2) dynamic program of Theorem 5 and the sweep campaigns
// re-discretize the same law many times — each discretization costs n
// quantile inversions (root-finding for several Table 1 laws) plus n CDF
// evaluations. A TabulatedCdf evaluates both grids once at construction and
// is immutable afterwards, so it can be shared read-only across sweep
// workers; only the hit/miss counters mutate (relaxed atomics).
//
// Exactness contract: a tabulated value *is* the value the underlying
// distribution returned at build time, and lookups hit only on bit-identical
// probe points, so cached and direct evaluation agree exactly — the
// discretizer produces byte-identical output with or without the table
// (tests/test_tabulated_cdf.cpp enforces this).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "dist/distribution.hpp"

namespace sre::dist {

class TabulatedCdf {
 public:
  /// Evaluates the two Section 4.2.1 grids for `d`:
  ///   equal-probability: Q(k * F(b)/n) for k = 1..n,
  ///   equal-time:        F(a + k * (b-a)/n) for k = 0..n,
  /// with b the support upper bound, or Q(1 - epsilon) when unbounded.
  /// `d` must outlive the table (CdfCache owns the pairing).
  TabulatedCdf(const Distribution& d, std::size_t n, double epsilon);

  [[nodiscard]] const Distribution& source() const noexcept { return *d_; }
  [[nodiscard]] std::size_t grid_size() const noexcept { return n_; }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] double lower() const noexcept { return lower_; }
  /// Truncation point b (upper support bound, or Q(1 - epsilon)).
  [[nodiscard]] double truncation() const noexcept { return upper_; }
  /// Retained mass F(b) (1 for bounded laws, 1 - epsilon unbounded).
  [[nodiscard]] double mass() const noexcept { return mass_; }

  /// Cached Q(k * mass/n), k in 1..n (the equal-probability grid).
  [[nodiscard]] double quantile_point(std::size_t k) const;
  /// Cached F(a + k * (b-a)/n), k in 0..n (the equal-time grid).
  [[nodiscard]] double cdf_point(std::size_t k) const;

  /// F(t): served from the table when t is bit-identical to an equal-time
  /// grid point, else delegated to the distribution (counted as a miss).
  [[nodiscard]] double cdf(double t) const;
  /// Q(p): served from the table when p is bit-identical to an
  /// equal-probability grid probe, else delegated (counted as a miss).
  [[nodiscard]] double quantile(double p) const;

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] Counters counters() const noexcept;

 private:
  const Distribution* d_;
  std::size_t n_;
  double epsilon_;
  double lower_ = 0.0;
  double upper_ = 0.0;
  double mass_ = 0.0;

  std::vector<double> probs_;      ///< k * (mass/n), k = 1..n (ascending)
  std::vector<double> quantiles_;  ///< Q(probs_[k-1])
  std::vector<double> times_;      ///< a + k * (b-a)/n, k = 0..n (ascending)
  std::vector<double> cdfs_;       ///< F(times_[k])

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

/// Per-distribution registry of TabulatedCdf tables, keyed by (n, epsilon).
/// Thread-safe build-once: concurrent sweep workers asking for the same grid
/// share one table; the first request builds it, later ones reuse it. Owns
/// the distribution, so tables can never outlive their source.
class CdfCache {
 public:
  explicit CdfCache(DistributionPtr d);

  [[nodiscard]] const Distribution& distribution() const noexcept {
    return *d_;
  }

  /// The (n, epsilon) table, built on first request.
  [[nodiscard]] std::shared_ptr<const TabulatedCdf> table(std::size_t n,
                                                          double epsilon) const;

  struct Stats {
    std::uint64_t builds = 0;  ///< tables constructed
    std::uint64_t reuses = 0;  ///< requests served by an existing table
  };
  [[nodiscard]] Stats stats() const;

  /// Sum of the point-lookup counters over every table built so far.
  [[nodiscard]] TabulatedCdf::Counters lookup_counters() const;

 private:
  struct Entry {
    std::size_t n;
    double epsilon;
    std::shared_ptr<const TabulatedCdf> table;
  };

  DistributionPtr d_;
  mutable std::mutex mutex_;
  mutable std::vector<Entry> entries_;
  mutable Stats stats_;
};

}  // namespace sre::dist
