#pragma once

// Exponential(lambda), support [0, inf). Table 1 instantiation: lambda = 1.
// The memoryless law: E[X | X > tau] = tau + 1/lambda, so MEAN-BY-MEAN
// produces the arithmetic sequence tau_i = i/lambda (Appendix B). Section 3.5
// shows the RESERVATIONONLY optimum is s_i/lambda with s1 ~ 0.74219.

#include "dist/distribution.hpp"

namespace sre::dist {

class Exponential final : public Distribution {
 public:
  explicit Exponential(double lambda);

  [[nodiscard]] double rate() const noexcept { return lambda_; }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double sf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 protected:
  /// SoA kernels: same branches and libm expressions as the scalar members,
  /// minus the per-element virtual dispatch.
  void do_cdf_batch(std::span<const double> t,
                    std::span<double> out) const override;
  void do_sf_batch(std::span<const double> t,
                   std::span<double> out) const override;
  void do_quantile_batch(std::span<const double> p,
                         std::span<double> out) const override;

 private:
  double lambda_;
};

}  // namespace sre::dist
