#include "dist/lognormal.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "stats/fitting.hpp"
#include "stats/special_functions.hpp"

#include "stats/canonical.hpp"

namespace sre::dist {

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  assert(sigma > 0.0);
}

LogNormal LogNormal::from_moments(double mean, double stddev) {
  const stats::LogNormalParams p = stats::lognormal_from_moments(mean, stddev);
  return LogNormal(p.mu, p.sigma);
}

double LogNormal::pdf(double t) const {
  if (t <= 0.0) return 0.0;
  const double z = (std::log(t) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (t * sigma_ * std::sqrt(2.0 * M_PI));
}

double LogNormal::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return stats::norm_cdf((std::log(t) - mu_) / sigma_);
}

double LogNormal::sf(double t) const {
  if (t <= 0.0) return 1.0;
  // erfc keeps precision deep in the right tail.
  const double z = (std::log(t) - mu_) / sigma_;
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

double LogNormal::quantile(double p) const {
  detail::require_probability(p, "LogNormal.quantile");
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return std::exp(mu_ + sigma_ * stats::norm_quantile(p));
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

Support LogNormal::support() const {
  return Support{0.0, std::numeric_limits<double>::infinity()};
}

double LogNormal::conditional_mean_above(double tau) const {
  if (tau <= 0.0) return mean();
  const double sqrt2 = std::sqrt(2.0);
  const double z = (std::log(tau) - mu_) / sigma_;
  // E[X | X > tau] = mean * Phi(sigma - z) / Phi(-z), in erfc form for tail
  // stability: Phi(-z) = erfc(z/sqrt2)/2, Phi(sigma - z) = erfc((z-sigma)/sqrt2)/2.
  const double den = std::erfc(z / sqrt2);
  if (den > 0.0) {
    const double num = std::erfc((z - sigma_) / sqrt2);
    const double value = mean() * num / den;
    if (std::isfinite(value) && value >= tau) return value;
  }
  return conditional_mean_above_numeric(tau);
}

void LogNormal::do_cdf_batch(std::span<const double> t,
                             std::span<double> out) const {
  const double mu = mu_, sigma = sigma_;
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = t[i] <= 0.0
                 ? 0.0
                 : stats::norm_cdf((std::log(t[i]) - mu) / sigma);
  }
}

void LogNormal::do_sf_batch(std::span<const double> t,
                            std::span<double> out) const {
  const double mu = mu_, sigma = sigma_;
  const double sqrt2 = std::sqrt(2.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = t[i] <= 0.0
                 ? 1.0
                 : 0.5 * std::erfc((std::log(t[i]) - mu) / sigma / sqrt2);
  }
}

void LogNormal::do_quantile_batch(std::span<const double> p,
                                  std::span<double> out) const {
  const double mu = mu_, sigma = sigma_;
  for (std::size_t i = 0; i < p.size(); ++i) {
    detail::require_probability(p[i], "LogNormal.quantile");
    out[i] = p[i] <= 0.0   ? 0.0
             : p[i] >= 1.0 ? std::numeric_limits<double>::infinity()
                           : std::exp(mu + sigma * stats::norm_quantile(p[i]));
  }
}

std::string LogNormal::name() const { return "LogNormal"; }

std::string LogNormal::describe() const {
  std::ostringstream os;
  os << "LogNormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return os.str();
}

std::string LogNormal::to_key() const {
  return "lognormal(mu=" + stats::canonical_key_double(mu_, "lognormal.mu") +
         ",sigma=" + stats::canonical_key_double(sigma_, "lognormal.sigma") +
         ")";
}

}  // namespace sre::dist
