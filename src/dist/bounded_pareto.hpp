#pragma once

// BoundedPareto(L, H, alpha): a Pareto law restricted to [L, H]. Table 1
// instantiation: L = 1, H = 20, alpha = 2.1. MEAN-BY-MEAN closed form
// (Appendix B, Theorem 13):
//   E[X | X > tau] = alpha/(alpha-1)
//                  * (H^{1-alpha} - tau^{1-alpha}) / (H^{-alpha} - tau^{-alpha}).

#include "dist/distribution.hpp"

namespace sre::dist {

class BoundedPareto final : public Distribution {
 public:
  BoundedPareto(double lower, double upper, double alpha);

  [[nodiscard]] double lower() const noexcept { return L_; }
  [[nodiscard]] double upper() const noexcept { return H_; }
  [[nodiscard]] double tail_index() const noexcept { return alpha_; }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 private:
  double L_;
  double H_;
  double alpha_;
  double norm_;  // 1 - (L/H)^alpha, cached
};

}  // namespace sre::dist
