#include "dist/gamma.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "stats/special_functions.hpp"

#include "stats/canonical.hpp"

namespace sre::dist {

Gamma::Gamma(double alpha, double beta)
    : alpha_(alpha),
      beta_(beta),
      log_norm_(alpha * std::log(beta) - stats::log_gamma(alpha)) {
  assert(alpha > 0.0 && beta > 0.0);
}

double Gamma::pdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t == 0.0) {
    if (alpha_ < 1.0) return std::numeric_limits<double>::infinity();
    if (alpha_ == 1.0) return beta_;
    return 0.0;
  }
  return std::exp(log_norm_ + (alpha_ - 1.0) * std::log(t) - beta_ * t);
}

double Gamma::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return stats::gamma_p(alpha_, beta_ * t);
}

double Gamma::sf(double t) const {
  if (t <= 0.0) return 1.0;
  return stats::gamma_q(alpha_, beta_ * t);
}

double Gamma::quantile(double p) const {
  detail::require_probability(p, "Gamma.quantile");
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return stats::gamma_p_inv(alpha_, p) / beta_;
}

double Gamma::mean() const { return alpha_ / beta_; }

double Gamma::variance() const { return alpha_ / (beta_ * beta_); }

Support Gamma::support() const {
  return Support{0.0, std::numeric_limits<double>::infinity()};
}

double Gamma::conditional_mean_above(double tau) const {
  if (tau <= 0.0) return mean();
  const double x = beta_ * tau;
  const double q = stats::gamma_q(alpha_, x);
  if (q > 0.0) {
    // (x^alpha e^{-x}) / Gamma(alpha, x) evaluated in log space.
    const double log_num = alpha_ * std::log(x) - x;
    const double log_den = std::log(q) + stats::log_gamma(alpha_);
    const double value = alpha_ / beta_ + std::exp(log_num - log_den) / beta_;
    if (std::isfinite(value) && value >= tau) return value;
  }
  return conditional_mean_above_numeric(tau);
}

std::string Gamma::name() const { return "Gamma"; }

std::string Gamma::describe() const {
  std::ostringstream os;
  os << "Gamma(alpha=" << alpha_ << ", beta=" << beta_ << ")";
  return os.str();
}

std::string Gamma::to_key() const {
  return "gamma(alpha=" + stats::canonical_key_double(alpha_, "gamma.alpha") +
         ",beta=" + stats::canonical_key_double(beta_, "gamma.beta") + ")";
}

}  // namespace sre::dist
