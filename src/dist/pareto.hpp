#pragma once

// Pareto(nu, alpha) with scale nu and tail index alpha, support [nu, inf).
// Table 1 instantiation: nu = 1.5, alpha = 3. The conditional mean is the
// self-similar E[X | X > tau] = alpha/(alpha-1) * tau (Appendix B,
// Theorem 10), so MEAN-BY-MEAN is geometric.

#include "dist/distribution.hpp"

namespace sre::dist {

class Pareto final : public Distribution {
 public:
  Pareto(double scale, double alpha);

  [[nodiscard]] double scale() const noexcept { return nu_; }
  [[nodiscard]] double tail_index() const noexcept { return alpha_; }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double sf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 protected:
  void do_cdf_batch(std::span<const double> t,
                    std::span<double> out) const override;
  void do_sf_batch(std::span<const double> t,
                   std::span<double> out) const override;
  void do_quantile_batch(std::span<const double> p,
                         std::span<double> out) const override;

 private:
  double nu_;
  double alpha_;
};

}  // namespace sre::dist
