#include "dist/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "stats/summary.hpp"

#include "stats/canonical.hpp"

namespace sre::dist {

HistogramDistribution HistogramDistribution::from_samples(
    std::span<const double> samples, std::size_t bins) {
  assert(!samples.empty() && bins >= 1);
  double lo = samples[0], hi = samples[0];
  for (const double s : samples) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  assert(lo >= 0.0);
  // Widen so the max sample lands inside the last bin, and keep a positive
  // width even for a degenerate (constant) trace.
  const double pad = std::fmax((hi - lo) * 1e-9, 1e-9 * (1.0 + hi));
  lo = std::fmax(0.0, lo - pad);
  hi = hi + pad;
  const double width = (hi - lo) / static_cast<double>(bins);

  std::vector<double> edges(bins + 1);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges[i] = lo + width * static_cast<double>(i);
  }
  std::vector<double> masses(bins, 0.0);
  for (const double s : samples) {
    auto b = static_cast<std::size_t>((s - lo) / width);
    if (b >= bins) b = bins - 1;
    masses[b] += 1.0;
  }
  return HistogramDistribution(std::move(edges), std::move(masses));
}

HistogramDistribution::HistogramDistribution(std::vector<double> edges,
                                             std::vector<double> masses)
    : edges_(std::move(edges)), masses_(std::move(masses)) {
  assert(edges_.size() == masses_.size() + 1 && !masses_.empty());
  assert(edges_.front() >= 0.0);
  stats::KahanSum total;
  for (std::size_t i = 0; i < masses_.size(); ++i) {
    assert(edges_[i + 1] > edges_[i]);
    assert(masses_[i] >= 0.0);
    total.add(masses_[i]);
  }
  assert(total.value() > 0.0);
  cum_.resize(masses_.size());
  stats::KahanSum running;
  for (std::size_t i = 0; i < masses_.size(); ++i) {
    masses_[i] /= total.value();
    running.add(masses_[i]);
    cum_[i] = std::fmin(running.value(), 1.0);
  }
  cum_.back() = 1.0;
}

std::size_t HistogramDistribution::bin_of(double t) const {
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), t);
  if (it == edges_.begin()) return 0;
  const auto idx = static_cast<std::size_t>(it - edges_.begin()) - 1;
  return std::min(idx, masses_.size() - 1);
}

double HistogramDistribution::pdf(double t) const {
  if (t < edges_.front() || t >= edges_.back()) return 0.0;
  const std::size_t b = bin_of(t);
  return masses_[b] / (edges_[b + 1] - edges_[b]);
}

double HistogramDistribution::cdf(double t) const {
  if (t <= edges_.front()) return 0.0;
  if (t >= edges_.back()) return 1.0;
  const std::size_t b = bin_of(t);
  const double before = (b == 0) ? 0.0 : cum_[b - 1];
  const double frac = (t - edges_[b]) / (edges_[b + 1] - edges_[b]);
  return before + masses_[b] * frac;
}

double HistogramDistribution::quantile(double p) const {
  detail::require_probability(p, "HistogramDistribution.quantile");
  if (p <= 0.0) return edges_.front();
  if (p >= 1.0) return edges_.back();
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), p);
  const auto b = static_cast<std::size_t>(it - cum_.begin());
  const double before = (b == 0) ? 0.0 : cum_[b - 1];
  if (masses_[b] <= 0.0) return edges_[b];
  const double frac = (p - before) / masses_[b];
  return edges_[b] + frac * (edges_[b + 1] - edges_[b]);
}

double HistogramDistribution::mean() const {
  stats::KahanSum s;
  for (std::size_t i = 0; i < masses_.size(); ++i) {
    s.add(masses_[i] * 0.5 * (edges_[i] + edges_[i + 1]));
  }
  return s.value();
}

double HistogramDistribution::variance() const {
  // E[X^2] of a uniform piece on [a,b] is (a^2 + ab + b^2)/3.
  stats::KahanSum ex2;
  for (std::size_t i = 0; i < masses_.size(); ++i) {
    const double a = edges_[i], b = edges_[i + 1];
    ex2.add(masses_[i] * (a * a + a * b + b * b) / 3.0);
  }
  const double m = mean();
  return ex2.value() - m * m;
}

Support HistogramDistribution::support() const {
  return Support{edges_.front(), edges_.back()};
}

double HistogramDistribution::conditional_mean_above(double tau) const {
  if (tau <= edges_.front()) return mean();
  if (tau >= edges_.back()) return edges_.back();
  const std::size_t b0 = bin_of(tau);
  stats::KahanSum num, den;
  // Partial piece of the bin containing tau: uniform on [tau, edge].
  {
    const double a = edges_[b0], b = edges_[b0 + 1];
    if (tau < b) {
      const double mass = masses_[b0] * (b - tau) / (b - a);
      num.add(mass * 0.5 * (tau + b));
      den.add(mass);
    }
  }
  for (std::size_t i = b0 + 1; i < masses_.size(); ++i) {
    num.add(masses_[i] * 0.5 * (edges_[i] + edges_[i + 1]));
    den.add(masses_[i]);
  }
  if (!(den.value() > 0.0)) return tau;
  return std::fmax(num.value() / den.value(), tau);
}

std::string HistogramDistribution::name() const { return "Histogram"; }

std::string HistogramDistribution::describe() const {
  std::ostringstream os;
  os << "Histogram(bins=" << masses_.size() << ", [" << edges_.front() << ", "
     << edges_.back() << "])";
  return os.str();
}

std::string HistogramDistribution::to_key() const {
  std::string key = "histogram(edges=";
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) key += ",";
    key += stats::canonical_key_double(edges_[i], "histogram.edge");
  }
  key += ";masses=";
  for (std::size_t i = 0; i < masses_.size(); ++i) {
    if (i > 0) key += ",";
    key += stats::canonical_key_double(masses_[i], "histogram.mass");
  }
  return key + ")";
}

}  // namespace sre::dist
