#pragma once

// Abstract interface for the execution-time laws of Section 2.1. A
// distribution is nonnegative with support [a, b] (b possibly infinite) and
// exposes exactly the quantities the reservation algorithms consume:
// pdf f, CDF F, survival 1-F, quantile Q, mean, variance, sampling, and the
// conditional expectation E[X | X > tau] that drives the MEAN-BY-MEAN
// heuristic (Appendix B).

#include <memory>
#include <random>
#include <span>
#include <string>

namespace sre::dist {

/// Support interval of a distribution; `upper` may be +infinity.
struct Support {
  double lower = 0.0;
  double upper = 0.0;

  [[nodiscard]] bool bounded() const noexcept;
  [[nodiscard]] bool contains(double t) const noexcept;
};

/// Random engine type shared across the library. The dependency points
/// downward (dist -> <random>), so the simulation layer can build richer
/// deterministic stream utilities on top without a cycle.
using Rng = std::mt19937_64;

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Probability density f(t). Zero outside the support.
  [[nodiscard]] virtual double pdf(double t) const = 0;

  /// Cumulative distribution F(t) = P(X <= t).
  [[nodiscard]] virtual double cdf(double t) const = 0;

  /// Strict survival function P(X > t). For continuous laws this equals
  /// 1 - F(t); atomic laws (DiscreteDistribution) override it so the
  /// Theorem 1 cost series stays exact: reservation i+1 is paid iff X > t_i.
  /// Also overridden where a direct evaluation is more accurate in the tail
  /// (the Eq. (4) series is a sum of survival terms).
  [[nodiscard]] virtual double sf(double t) const;

  /// Quantile Q(p) = inf { t : F(t) >= p }, p in [0, 1].
  [[nodiscard]] virtual double quantile(double p) const = 0;

  /// Batched SoA evaluation (the Section 4.2.1 discretization hot path).
  /// `out` must be exactly as long as the input span; input and output may
  /// not overlap. The wrappers record `dist.cdf.batch_size` and dispatch to
  /// the do_*_batch hooks below; results are bit-identical to calling the
  /// scalar virtuals point by point — the generic hooks do exactly that,
  /// and per-law overrides replicate the scalar bodies branch for branch
  /// (tests/test_batch_eval.cpp enforces the equivalence for every law).
  void cdf_batch(std::span<const double> t, std::span<double> out) const;
  void sf_batch(std::span<const double> t, std::span<double> out) const;
  /// Validates every probability exactly like the scalar quantile does:
  /// throws ScenarioError(kDomainError) at the first offending element,
  /// with earlier outputs already written — the same observable prefix a
  /// per-point loop leaves behind.
  void quantile_batch(std::span<const double> p, std::span<double> out) const;

  [[nodiscard]] virtual double mean() const = 0;
  [[nodiscard]] virtual double variance() const = 0;
  [[nodiscard]] double stddev() const;
  /// E[X^2] = Var[X] + E[X]^2 (used by the Theorem 2 bound A1).
  [[nodiscard]] double second_moment() const;
  [[nodiscard]] double median() const;

  [[nodiscard]] virtual Support support() const = 0;

  /// Draws one execution time. Default: inverse-transform sampling.
  [[nodiscard]] virtual double sample(Rng& rng) const;

  /// E[X | X > tau]. The default integrates t*f(t) numerically; every
  /// concrete law overrides with its Appendix-B closed form. Returns tau
  /// when the conditional tail mass is numerically zero.
  [[nodiscard]] virtual double conditional_mean_above(double tau) const;

  /// Partial expectation E[X * 1{a < X <= b}], derived from the
  /// conditional-mean closed forms:
  ///   E[X 1{X>a}] - E[X 1{X>b}] = cm(a) sf(a) - cm(b) sf(b).
  /// Used by the checkpointing cost evaluator.
  [[nodiscard]] double partial_expectation(double a, double b) const;

  /// Short identifier, e.g. "Exponential".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Human-readable description including parameter values.
  [[nodiscard]] virtual std::string describe() const;

  /// Canonical cache-key fragment for this law, e.g.
  /// "exponential(lambda=1)": lowercase name, parameters in a fixed order,
  /// each value rendered by stats::canonical_key_double (shortest
  /// round-trip form, -0.0 normalized, non-finite values rejected with a
  /// typed kDomainError). Two distributions with equal parameters produce
  /// identical bytes, which is what lets the srv:: plan cache key on it —
  /// see CONTRIBUTING.md "Request-key stability". The default throws
  /// ScenarioError(kDomainError); every concrete law in dist:: overrides.
  [[nodiscard]] virtual std::string to_key() const;

 protected:
  /// Numeric fallback for conditional_mean_above (exposed so overrides can
  /// delegate when their closed form loses precision deep in the tail).
  [[nodiscard]] double conditional_mean_above_numeric(double tau) const;

  /// Batch hooks behind the public wrappers. The defaults are the generic
  /// scalar-loop fallback (one virtual call per element), correct for every
  /// law. Overrides exist to strip the per-element virtual dispatch and
  /// keep the loop body vectorization-friendly; they MUST evaluate the same
  /// branches and expressions as the scalar member so outputs stay
  /// bit-identical (see CONTRIBUTING.md "Adding a distribution").
  virtual void do_cdf_batch(std::span<const double> t,
                            std::span<double> out) const;
  virtual void do_sf_batch(std::span<const double> t,
                           std::span<double> out) const;
  virtual void do_quantile_batch(std::span<const double> p,
                                 std::span<double> out) const;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

namespace detail {

/// Validates a quantile argument: throws ScenarioError(kDomainError) naming
/// `context` when p is NaN or outside [0, 1]. Every quantile implementation
/// calls this first, so a corrupted probability surfaces as a typed error at
/// the call site instead of propagating NaN through a reservation sequence.
/// Exact 0 and 1 are valid (they map to the support endpoints) — antithetic
/// Monte Carlo legitimately evaluates both boundaries.
void require_probability(double p, const char* context);

}  // namespace detail

}  // namespace sre::dist
