#pragma once

// Uniform(a, b), support [a, b]. Table 1 instantiation: a = 10, b = 20.
// Theorem 4 proves that the optimal reservation strategy for Uniform is the
// single reservation (b), for any cost parameters. The conditional mean is
// E[X | X > tau] = (b + tau)/2 (Appendix B, Theorem 11).

#include "dist/distribution.hpp"

namespace sre::dist {

class Uniform final : public Distribution {
 public:
  Uniform(double lower, double upper);

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 protected:
  /// No do_sf_batch override: Uniform has no scalar sf override either, so
  /// both paths share the base-class 1 - F(t) composition.
  void do_cdf_batch(std::span<const double> t,
                    std::span<double> out) const override;
  void do_quantile_batch(std::span<const double> p,
                         std::span<double> out) const override;

 private:
  double a_;
  double b_;
};

}  // namespace sre::dist
