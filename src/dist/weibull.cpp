#include "dist/weibull.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "stats/special_functions.hpp"

#include "stats/canonical.hpp"

namespace sre::dist {

Weibull::Weibull(double lambda, double kappa) : lambda_(lambda), kappa_(kappa) {
  assert(lambda > 0.0 && kappa > 0.0);
}

double Weibull::pdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t == 0.0) {
    // kappa < 1 diverges at the origin; kappa == 1 is the exponential.
    if (kappa_ < 1.0) return std::numeric_limits<double>::infinity();
    if (kappa_ == 1.0) return 1.0 / lambda_;
    return 0.0;
  }
  const double z = t / lambda_;
  return (kappa_ / lambda_) * std::pow(z, kappa_ - 1.0) *
         std::exp(-std::pow(z, kappa_));
}

double Weibull::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-std::pow(t / lambda_, kappa_));
}

double Weibull::sf(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-std::pow(t / lambda_, kappa_));
}

double Weibull::quantile(double p) const {
  detail::require_probability(p, "Weibull.quantile");
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return lambda_ * std::pow(-std::log1p(-p), 1.0 / kappa_);
}

double Weibull::mean() const {
  return lambda_ * std::tgamma(1.0 + 1.0 / kappa_);
}

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / kappa_);
  const double g2 = std::tgamma(1.0 + 2.0 / kappa_);
  return lambda_ * lambda_ * (g2 - g1 * g1);
}

Support Weibull::support() const {
  return Support{0.0, std::numeric_limits<double>::infinity()};
}

double Weibull::conditional_mean_above(double tau) const {
  if (tau <= 0.0) return mean();
  const double x = std::pow(tau / lambda_, kappa_);
  const double a = 1.0 + 1.0 / kappa_;
  // Evaluate exp(x) * Gamma(a, x) in log space: exp(x) overflows long before
  // the product does (the product ~ tau * x^{1/kappa - ...} stays moderate).
  const double q = stats::gamma_q(a, x);
  if (q > 0.0) {
    const double log_value = x + std::log(q) + stats::log_gamma(a);
    const double value = lambda_ * std::exp(log_value);
    if (std::isfinite(value) && value >= tau) return value;
  }
  return conditional_mean_above_numeric(tau);
}

void Weibull::do_cdf_batch(std::span<const double> t,
                           std::span<double> out) const {
  const double lambda = lambda_, kappa = kappa_;
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = t[i] <= 0.0 ? 0.0 : -std::expm1(-std::pow(t[i] / lambda, kappa));
  }
}

void Weibull::do_sf_batch(std::span<const double> t,
                          std::span<double> out) const {
  const double lambda = lambda_, kappa = kappa_;
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = t[i] <= 0.0 ? 1.0 : std::exp(-std::pow(t[i] / lambda, kappa));
  }
}

void Weibull::do_quantile_batch(std::span<const double> p,
                                std::span<double> out) const {
  const double lambda = lambda_, inv_kappa = 1.0 / kappa_;
  for (std::size_t i = 0; i < p.size(); ++i) {
    detail::require_probability(p[i], "Weibull.quantile");
    out[i] = p[i] <= 0.0   ? 0.0
             : p[i] >= 1.0 ? std::numeric_limits<double>::infinity()
                           : lambda * std::pow(-std::log1p(-p[i]), inv_kappa);
  }
}

std::string Weibull::name() const { return "Weibull"; }

std::string Weibull::describe() const {
  std::ostringstream os;
  os << "Weibull(lambda=" << lambda_ << ", kappa=" << kappa_ << ")";
  return os.str();
}

std::string Weibull::to_key() const {
  return "weibull(lambda=" +
         stats::canonical_key_double(lambda_, "weibull.lambda") +
         ",kappa=" + stats::canonical_key_double(kappa_, "weibull.kappa") +
         ")";
}

}  // namespace sre::dist
