#pragma once

// LogLogistic(alpha, beta) (a.k.a. Fisk): scale alpha, shape beta, support
// [0, inf). A standard heavy-tailed model for service and repair times with
// fully closed-form CDF and quantile,
//   F(t) = 1 / (1 + (t/alpha)^{-beta}),   Q(p) = alpha (p/(1-p))^{1/beta},
// mean alpha * (pi/beta) / sin(pi/beta) for beta > 1, and a conditional
// mean expressible through the regularized incomplete beta function --
// extending the paper's Table 1 family with a polynomially-tailed law whose
// tail index is tunable independently of the body.

#include "dist/distribution.hpp"

namespace sre::dist {

class LogLogistic final : public Distribution {
 public:
  /// Requires beta > 1 so the mean exists (the reservation problem needs
  /// finite E[X]; Theorem 2 additionally wants E[X^2], i.e. beta > 2, for
  /// the A1 bound -- asserted only where used).
  LogLogistic(double scale, double shape);

  [[nodiscard]] double scale() const noexcept { return alpha_; }
  [[nodiscard]] double shape() const noexcept { return beta_; }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double sf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 private:
  double alpha_;
  double beta_;
};

}  // namespace sre::dist
