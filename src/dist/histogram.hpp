#pragma once

// Piecewise-uniform (histogram) distribution built from a trace -- the
// nonparametric "interpolated trace" law the paper's NeuroHPC section
// alludes to ("based on interpolating traces from a real neuroscience
// application"). Within each bin the density is constant, so pdf, CDF,
// quantile, moments and conditional means are all exact closed forms, and
// the law is continuous (unlike DiscreteDistribution) -- the Eq. (11)
// recurrence and the brute-force search apply directly.

#include <span>
#include <vector>

#include "dist/distribution.hpp"

namespace sre::dist {

class HistogramDistribution final : public Distribution {
 public:
  /// Equal-width bins over [min(samples), max(samples)] (the range is
  /// widened by a hair so every sample falls strictly inside).
  static HistogramDistribution from_samples(std::span<const double> samples,
                                            std::size_t bins = 64);

  /// Explicit construction: `edges` strictly increasing (size n+1),
  /// `masses` nonnegative (size n) with positive sum; normalized.
  HistogramDistribution(std::vector<double> edges, std::vector<double> masses);

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return masses_.size();
  }
  [[nodiscard]] const std::vector<double>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] const std::vector<double>& masses() const noexcept {
    return masses_;
  }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 private:
  /// Index of the bin containing t (edges_[i] <= t < edges_[i+1]).
  [[nodiscard]] std::size_t bin_of(double t) const;

  std::vector<double> edges_;   // n+1 ascending edges
  std::vector<double> masses_;  // n normalized bin masses
  std::vector<double> cum_;     // cum_[i] = F(edges_[i+1])
};

}  // namespace sre::dist
