#pragma once

// Beta(alpha, beta), support [0, 1]. Table 1 instantiation: alpha = beta = 2.
// MEAN-BY-MEAN closed form (Appendix B, Theorem 12):
//   E[X | X > tau] = [B(alpha+1, beta) - B(tau; alpha+1, beta)]
//                  / [B(alpha, beta)   - B(tau; alpha,   beta)],
// with B(x; a, b) the unregularized incomplete beta function.

#include "dist/distribution.hpp"

namespace sre::dist {

class Beta final : public Distribution {
 public:
  Beta(double alpha, double beta);

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double beta() const noexcept { return beta_; }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 private:
  double alpha_;
  double beta_;
  double lbeta_;  // log B(alpha, beta), cached
};

}  // namespace sre::dist
