#include "dist/loglogistic.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "stats/special_functions.hpp"

#include "stats/canonical.hpp"

namespace sre::dist {

LogLogistic::LogLogistic(double scale, double shape)
    : alpha_(scale), beta_(shape) {
  assert(scale > 0.0 && shape > 1.0 && "beta > 1 needed for a finite mean");
}

double LogLogistic::pdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t == 0.0) return (beta_ > 1.0) ? 0.0 : std::numeric_limits<double>::infinity();
  const double z = std::pow(t / alpha_, beta_);
  const double denom = (1.0 + z) * (1.0 + z);
  return (beta_ / t) * z / denom;
}

double LogLogistic::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  const double z = std::pow(t / alpha_, beta_);
  return z / (1.0 + z);
}

double LogLogistic::sf(double t) const {
  if (t <= 0.0) return 1.0;
  const double z = std::pow(t / alpha_, beta_);
  return 1.0 / (1.0 + z);
}

double LogLogistic::quantile(double p) const {
  detail::require_probability(p, "LogLogistic.quantile");
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * std::pow(p / (1.0 - p), 1.0 / beta_);
}

double LogLogistic::mean() const {
  // alpha * Gamma(1+1/b) Gamma(1-1/b) = alpha * (pi/b) / sin(pi/b).
  const double x = M_PI / beta_;
  return alpha_ * x / std::sin(x);
}

double LogLogistic::variance() const {
  assert(beta_ > 2.0 && "variance requires beta > 2");
  const double x = M_PI / beta_;
  const double ex2 = alpha_ * alpha_ * 2.0 * x / std::sin(2.0 * x);
  const double m = mean();
  return ex2 - m * m;
}

Support LogLogistic::support() const {
  return Support{0.0, std::numeric_limits<double>::infinity()};
}

double LogLogistic::conditional_mean_above(double tau) const {
  if (tau <= 0.0) return mean();
  // With u = F(t): E[X 1{X<=tau}] = alpha B(F(tau); 1+1/b, 1-1/b), so
  // E[X | X > tau] = (E[X] - alpha B(F; 1+1/b, 1-1/b)) / (1 - F).
  const double tail = sf(tau);
  if (!(tail > 0.0)) return tau;
  const double a = 1.0 + 1.0 / beta_;
  const double b = 1.0 - 1.0 / beta_;
  const double lower = alpha_ * stats::inc_beta_unreg(cdf(tau), a, b);
  const double value = (mean() - lower) / tail;
  if (std::isfinite(value) && value >= tau) return value;
  return conditional_mean_above_numeric(tau);
}

std::string LogLogistic::name() const { return "LogLogistic"; }

std::string LogLogistic::describe() const {
  std::ostringstream os;
  os << "LogLogistic(alpha=" << alpha_ << ", beta=" << beta_ << ")";
  return os.str();
}

std::string LogLogistic::to_key() const {
  return "loglogistic(alpha=" +
         stats::canonical_key_double(alpha_, "loglogistic.alpha") + ",beta=" +
         stats::canonical_key_double(beta_, "loglogistic.beta") + ")";
}

}  // namespace sre::dist
