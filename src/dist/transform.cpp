#include "dist/transform.hpp"

#include <cassert>
#include <cmath>
#include <sstream>

#include "stats/canonical.hpp"

namespace sre::dist {

ScaledDistribution::ScaledDistribution(DistributionPtr base, double factor)
    : base_(std::move(base)), factor_(factor) {
  assert(base_ != nullptr && factor > 0.0);
}

double ScaledDistribution::pdf(double t) const {
  return base_->pdf(t / factor_) / factor_;
}
double ScaledDistribution::cdf(double t) const {
  return base_->cdf(t / factor_);
}
double ScaledDistribution::sf(double t) const {
  return base_->sf(t / factor_);
}
double ScaledDistribution::quantile(double p) const {
  detail::require_probability(p, "ScaledDistribution.quantile");
  return factor_ * base_->quantile(p);
}
double ScaledDistribution::mean() const { return factor_ * base_->mean(); }
double ScaledDistribution::variance() const {
  return factor_ * factor_ * base_->variance();
}
Support ScaledDistribution::support() const {
  const Support s = base_->support();
  return Support{factor_ * s.lower, factor_ * s.upper};
}
double ScaledDistribution::sample(Rng& rng) const {
  return factor_ * base_->sample(rng);
}
double ScaledDistribution::conditional_mean_above(double tau) const {
  return factor_ * base_->conditional_mean_above(tau / factor_);
}
std::string ScaledDistribution::name() const { return "Scaled"; }
std::string ScaledDistribution::describe() const {
  std::ostringstream os;
  os << "Scaled(" << base_->describe() << " * " << factor_ << ")";
  return os.str();
}

ShiftedDistribution::ShiftedDistribution(DistributionPtr base, double delta)
    : base_(std::move(base)), delta_(delta) {
  assert(base_ != nullptr && delta >= 0.0);
}

double ShiftedDistribution::pdf(double t) const {
  return base_->pdf(t - delta_);
}
double ShiftedDistribution::cdf(double t) const {
  return base_->cdf(t - delta_);
}
double ShiftedDistribution::sf(double t) const {
  return base_->sf(t - delta_);
}
double ShiftedDistribution::quantile(double p) const {
  detail::require_probability(p, "ShiftedDistribution.quantile");
  return delta_ + base_->quantile(p);
}
double ShiftedDistribution::mean() const { return delta_ + base_->mean(); }
double ShiftedDistribution::variance() const { return base_->variance(); }
Support ShiftedDistribution::support() const {
  const Support s = base_->support();
  return Support{s.lower + delta_, s.upper + delta_};
}
double ShiftedDistribution::sample(Rng& rng) const {
  return delta_ + base_->sample(rng);
}
double ShiftedDistribution::conditional_mean_above(double tau) const {
  return delta_ + base_->conditional_mean_above(tau - delta_);
}
std::string ShiftedDistribution::name() const { return "Shifted"; }
std::string ShiftedDistribution::describe() const {
  std::ostringstream os;
  os << "Shifted(" << base_->describe() << " + " << delta_ << ")";
  return os.str();
}

std::string ScaledDistribution::to_key() const {
  return "scaled(factor=" +
         stats::canonical_key_double(factor_, "scaled.factor") + ",base=" +
         base_->to_key() + ")";
}

std::string ShiftedDistribution::to_key() const {
  return "shifted(delta=" +
         stats::canonical_key_double(delta_, "shifted.delta") + ",base=" +
         base_->to_key() + ")";
}

}  // namespace sre::dist
