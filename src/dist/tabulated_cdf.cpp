#include "dist/tabulated_cdf.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace sre::dist {

namespace {

// Process-wide mirrors of the per-table counters, so a sweep's cache
// behaviour shows up in obs::report_json() without walking every CdfCache.
obs::Counter& obs_hits() {
  static obs::Counter& c = obs::counter("dist.cdf_cache.hits");
  return c;
}
obs::Counter& obs_misses() {
  static obs::Counter& c = obs::counter("dist.cdf_cache.misses");
  return c;
}

/// Exact binary search: returns the index of `x` in the sorted `grid`, or
/// grid.size() when no element compares bit-equal. Probes that were computed
/// with the same expression as the grid (k * step, a + k * step) hit.
std::size_t find_exact(const std::vector<double>& grid, double x) {
  const auto it = std::lower_bound(grid.begin(), grid.end(), x);
  if (it != grid.end() && *it == x) {
    return static_cast<std::size_t>(it - grid.begin());
  }
  return grid.size();
}

}  // namespace

TabulatedCdf::TabulatedCdf(const Distribution& d, std::size_t n, double epsilon)
    : d_(&d), n_(n), epsilon_(epsilon) {
  assert(n >= 1);
  assert(epsilon > 0.0 && epsilon < 1.0);
  const Support s = d.support();
  lower_ = s.lower;
  upper_ = s.bounded() ? s.upper : d.quantile(1.0 - epsilon);
  mass_ = d.cdf(upper_);

  // The probe expressions mirror sim::discretize() exactly — `f = mass/n`
  // then `k * f`, and `step = (b-a)/n` then `a + k * step` — so the
  // discretizer's queries are bit-identical to the stored grid points. Both
  // grids are filled through the batched SoA kernels: one quantile_batch
  // and one cdf_batch instead of 2n+1 virtual calls.
  const double f = mass_ / static_cast<double>(n_);
  probs_.resize(n_);
  quantiles_.resize(n_);
  for (std::size_t k = 1; k <= n_; ++k) {
    probs_[k - 1] = static_cast<double>(k) * f;
  }
  d.quantile_batch(probs_, quantiles_);

  const double step = (upper_ - lower_) / static_cast<double>(n_);
  times_.resize(n_ + 1);
  cdfs_.resize(n_ + 1);
  for (std::size_t k = 0; k <= n_; ++k) {
    times_[k] = lower_ + static_cast<double>(k) * step;
  }
  d.cdf_batch(times_, cdfs_);
}

double TabulatedCdf::quantile_point(std::size_t k) const {
  assert(k >= 1 && k <= n_);
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs_hits().add();
  return quantiles_[k - 1];
}

double TabulatedCdf::cdf_point(std::size_t k) const {
  assert(k <= n_);
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs_hits().add();
  return cdfs_[k];
}

double TabulatedCdf::cdf(double t) const {
  const std::size_t i = find_exact(times_, t);
  if (i < times_.size()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs_hits().add();
    return cdfs_[i];
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs_misses().add();
  return d_->cdf(t);
}

double TabulatedCdf::quantile(double p) const {
  detail::require_probability(p, "TabulatedCdf.quantile");
  const std::size_t i = find_exact(probs_, p);
  if (i < probs_.size()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs_hits().add();
    return quantiles_[i];
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs_misses().add();
  return d_->quantile(p);
}

TabulatedCdf::Counters TabulatedCdf::counters() const noexcept {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed)};
}

CdfCache::CdfCache(DistributionPtr d) : d_(std::move(d)) {
  assert(d_);
  // Register both lookup counters eagerly: an all-hit (or all-miss) run
  // still reports the other side as an explicit zero.
  obs_hits();
  obs_misses();
}

std::shared_ptr<const TabulatedCdf> CdfCache::table(std::size_t n,
                                                    double epsilon) const {
  std::lock_guard lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.n == n && e.epsilon == epsilon) {
      ++stats_.reuses;
      static obs::Counter& reuses = obs::counter("dist.cdf_cache.table_reuses");
      reuses.add();
      return e.table;
    }
  }
  // Built under the lock: a concurrent requester for the same grid blocks
  // instead of duplicating the n quantile inversions.
  static obs::SpanStats& build_span = obs::span_series("dist.cdf_cache.build");
  obs::Span span(build_span);
  auto table = std::make_shared<const TabulatedCdf>(*d_, n, epsilon);
  entries_.push_back({n, epsilon, table});
  ++stats_.builds;
  static obs::Counter& builds = obs::counter("dist.cdf_cache.tables_built");
  builds.add();
  return table;
}

CdfCache::Stats CdfCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

TabulatedCdf::Counters CdfCache::lookup_counters() const {
  std::lock_guard lock(mutex_);
  TabulatedCdf::Counters total;
  for (const Entry& e : entries_) {
    const auto c = e.table->counters();
    total.hits += c.hits;
    total.misses += c.misses;
  }
  return total;
}

}  // namespace sre::dist
