#include "dist/mixture.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "dist/exponential.hpp"
#include "stats/root_finding.hpp"

#include "stats/canonical.hpp"

namespace sre::dist {

MixtureDistribution::MixtureDistribution(std::vector<Component> components)
    : components_(std::move(components)) {
  assert(!components_.empty());
  double total = 0.0;
  for (const auto& c : components_) {
    assert(c.dist != nullptr && c.weight >= 0.0);
    total += c.weight;
  }
  assert(total > 0.0);
  for (auto& c : components_) c.weight /= total;
}

MixtureDistribution MixtureDistribution::hyperexponential(
    const std::vector<double>& weights, const std::vector<double>& rates) {
  assert(weights.size() == rates.size() && !weights.empty());
  std::vector<Component> comps;
  comps.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    comps.push_back({weights[i], std::make_shared<Exponential>(rates[i])});
  }
  return MixtureDistribution(std::move(comps));
}

double MixtureDistribution::pdf(double t) const {
  double v = 0.0;
  for (const auto& c : components_) v += c.weight * c.dist->pdf(t);
  return v;
}

double MixtureDistribution::cdf(double t) const {
  double v = 0.0;
  for (const auto& c : components_) v += c.weight * c.dist->cdf(t);
  return v;
}

double MixtureDistribution::sf(double t) const {
  double v = 0.0;
  for (const auto& c : components_) v += c.weight * c.dist->sf(t);
  return v;
}

double MixtureDistribution::quantile(double p) const {
  detail::require_probability(p, "MixtureDistribution.quantile");
  if (p <= 0.0) return support().lower;
  if (p >= 1.0) return support().upper;
  // Bracket from the component quantiles: the mixture quantile lies between
  // the smallest and largest of them.
  double lo = components_.front().dist->quantile(p);
  double hi = lo;
  for (const auto& c : components_) {
    const double q = c.dist->quantile(p);
    lo = std::min(lo, q);
    hi = std::max(hi, q);
  }
  if (hi - lo < 1e-15 * (1.0 + std::fabs(hi))) return hi;
  const auto f = [this, p](double t) { return cdf(t) - p; };
  // Rounding can push the residual at a bracket endpoint across zero even
  // though the bracket is correct analytically; a zero-or-wrong-sign
  // endpoint IS the quantile (Q(p) = inf{t : F(t) >= p}), so resolve those
  // directly instead of handing brent() an "invalid" bracket.
  if (f(lo) >= 0.0) return lo;
  if (f(hi) <= 0.0) return hi;
  const auto root = stats::brent(f, lo, hi, {1e-13, 0.0, 400});
  return stats::require_converged(root, "MixtureDistribution.quantile").x;
}

double MixtureDistribution::mean() const {
  double v = 0.0;
  for (const auto& c : components_) v += c.weight * c.dist->mean();
  return v;
}

double MixtureDistribution::variance() const {
  double ex2 = 0.0;
  for (const auto& c : components_) {
    ex2 += c.weight * c.dist->second_moment();
  }
  const double m = mean();
  return ex2 - m * m;
}

Support MixtureDistribution::support() const {
  Support s = components_.front().dist->support();
  for (const auto& c : components_) {
    const Support cs = c.dist->support();
    s.lower = std::min(s.lower, cs.lower);
    s.upper = std::max(s.upper, cs.upper);
  }
  return s;
}

double MixtureDistribution::sample(Rng& rng) const {
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  double u = u01(rng);
  for (const auto& c : components_) {
    if (u < c.weight) return c.dist->sample(rng);
    u -= c.weight;
  }
  return components_.back().dist->sample(rng);
}

double MixtureDistribution::conditional_mean_above(double tau) const {
  // E[X 1{X>tau}] = sum_i w_i cm_i(tau) sf_i(tau).
  double num = 0.0;
  double den = 0.0;
  for (const auto& c : components_) {
    const double sfi = c.dist->sf(tau);
    if (sfi > 0.0) {
      num += c.weight * c.dist->conditional_mean_above(tau) * sfi;
      den += c.weight * sfi;
    }
  }
  if (!(den > 0.0)) return tau;
  return std::fmax(num / den, tau);
}

std::string MixtureDistribution::name() const { return "Mixture"; }

std::string MixtureDistribution::describe() const {
  std::ostringstream os;
  os << "Mixture(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) os << ", ";
    os << components_[i].weight << "*" << components_[i].dist->describe();
  }
  os << ")";
  return os.str();
}

std::string MixtureDistribution::to_key() const {
  std::string key = "mixture(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) key += ",";
    key += stats::canonical_key_double(components_[i].weight,
                                       "mixture.weight") +
           "*" + components_[i].dist->to_key();
  }
  return key + ")";
}

}  // namespace sre::dist
