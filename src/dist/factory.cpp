#include "dist/factory.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "dist/beta.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/exponential.hpp"
#include "dist/gamma.hpp"
#include "dist/loglogistic.hpp"
#include "dist/lognormal.hpp"
#include "dist/pareto.hpp"
#include "dist/truncated_normal.hpp"
#include "dist/uniform.hpp"
#include "dist/weibull.hpp"

namespace sre::dist {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::optional<double> get(const ParamMap& params, const std::string& key) {
  const auto it = params.find(key);
  if (it == params.end()) return std::nullopt;
  return it->second;
}

}  // namespace

DistributionPtr make_distribution(const std::string& name,
                                  const ParamMap& params) {
  const std::string n = lower(name);
  if (n == "exponential" || n == "exp") {
    if (const auto l = get(params, "lambda")) {
      return std::make_shared<Exponential>(*l);
    }
  } else if (n == "weibull") {
    const auto l = get(params, "lambda");
    const auto k = get(params, "kappa");
    if (l && k) return std::make_shared<Weibull>(*l, *k);
  } else if (n == "gamma") {
    const auto a = get(params, "alpha");
    const auto b = get(params, "beta");
    if (a && b) return std::make_shared<Gamma>(*a, *b);
  } else if (n == "lognormal") {
    const auto mu = get(params, "mu");
    const auto sigma = get(params, "sigma");
    if (mu && sigma) return std::make_shared<LogNormal>(*mu, *sigma);
  } else if (n == "truncatednormal") {
    const auto mu = get(params, "mu");
    const auto sigma = get(params, "sigma");
    const auto a = get(params, "a");
    if (mu && sigma && a) {
      return std::make_shared<TruncatedNormal>(*mu, *sigma, *a);
    }
  } else if (n == "pareto") {
    const auto nu = get(params, "nu");
    const auto a = get(params, "alpha");
    if (nu && a) return std::make_shared<Pareto>(*nu, *a);
  } else if (n == "uniform") {
    const auto a = get(params, "a");
    const auto b = get(params, "b");
    if (a && b) return std::make_shared<Uniform>(*a, *b);
  } else if (n == "beta") {
    const auto a = get(params, "alpha");
    const auto b = get(params, "beta");
    if (a && b) return std::make_shared<Beta>(*a, *b);
  } else if (n == "loglogistic") {
    const auto a = get(params, "alpha");
    const auto b = get(params, "beta");
    if (a && b) return std::make_shared<LogLogistic>(*a, *b);
  } else if (n == "boundedpareto") {
    const auto l = get(params, "l");
    const auto h = get(params, "h");
    const auto a = get(params, "alpha");
    if (l && h && a) return std::make_shared<BoundedPareto>(*l, *h, *a);
  }
  return nullptr;
}

std::vector<PaperInstance> paper_distributions() {
  // Table 1 parameter instantiations, in row order.
  // TruncatedNormal: the table lists sigma^2 = 2.0, i.e. sigma = sqrt(2).
  return {
      {"Exponential", std::make_shared<Exponential>(1.0)},
      {"Weibull", std::make_shared<Weibull>(1.0, 0.5)},
      {"Gamma", std::make_shared<Gamma>(2.0, 2.0)},
      {"Lognormal", std::make_shared<LogNormal>(3.0, 0.5)},
      {"TruncatedNormal",
       std::make_shared<TruncatedNormal>(8.0, std::sqrt(2.0), 0.0)},
      {"Pareto", std::make_shared<Pareto>(1.5, 3.0)},
      {"Uniform", std::make_shared<Uniform>(10.0, 20.0)},
      {"Beta", std::make_shared<Beta>(2.0, 2.0)},
      {"BoundedPareto", std::make_shared<BoundedPareto>(1.0, 20.0, 2.1)},
  };
}

std::optional<PaperInstance> paper_distribution(const std::string& label) {
  for (auto& inst : paper_distributions()) {
    if (lower(inst.label) == lower(label)) return inst;
  }
  return std::nullopt;
}

}  // namespace sre::dist
