#pragma once

// Finite mixtures sum_i w_i * D_i. Real execution-time traces are often
// multimodal (input-dependent fast/slow paths; the fMRIQA trace of Fig. 1a
// shows two clear modes), which single-mode fits misrepresent -- and which
// moment-based heuristics handle badly. Every query except the quantile is
// a weighted combination of the component closed forms; the quantile
// inverts the mixture CDF with Brent inside a bracket built from component
// quantiles.

#include <vector>

#include "dist/distribution.hpp"

namespace sre::dist {

class MixtureDistribution final : public Distribution {
 public:
  struct Component {
    double weight = 1.0;  ///< nonnegative; normalized on construction
    DistributionPtr dist;
  };

  explicit MixtureDistribution(std::vector<Component> components);

  /// Convenience: hyperexponential (mixture of exponentials), a standard
  /// model for high-variability service times.
  static MixtureDistribution hyperexponential(
      const std::vector<double>& weights, const std::vector<double>& rates);

  [[nodiscard]] const std::vector<Component>& components() const noexcept {
    return components_;
  }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double sf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 private:
  std::vector<Component> components_;
};

}  // namespace sre::dist
