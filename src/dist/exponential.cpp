#include "dist/exponential.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "stats/canonical.hpp"

namespace sre::dist {

Exponential::Exponential(double lambda) : lambda_(lambda) {
  assert(lambda > 0.0);
}

double Exponential::pdf(double t) const {
  if (t < 0.0) return 0.0;
  return lambda_ * std::exp(-lambda_ * t);
}

double Exponential::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-lambda_ * t);
}

double Exponential::sf(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-lambda_ * t);
}

double Exponential::quantile(double p) const {
  detail::require_probability(p, "Exponential.quantile");
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return -std::log1p(-p) / lambda_;
}

double Exponential::mean() const { return 1.0 / lambda_; }

double Exponential::variance() const { return 1.0 / (lambda_ * lambda_); }

Support Exponential::support() const {
  return Support{0.0, std::numeric_limits<double>::infinity()};
}

double Exponential::conditional_mean_above(double tau) const {
  // Memorylessness.
  return std::fmax(tau, 0.0) + 1.0 / lambda_;
}

void Exponential::do_cdf_batch(std::span<const double> t,
                               std::span<double> out) const {
  const double lambda = lambda_;
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = t[i] <= 0.0 ? 0.0 : -std::expm1(-lambda * t[i]);
  }
}

void Exponential::do_sf_batch(std::span<const double> t,
                              std::span<double> out) const {
  const double lambda = lambda_;
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = t[i] <= 0.0 ? 1.0 : std::exp(-lambda * t[i]);
  }
}

void Exponential::do_quantile_batch(std::span<const double> p,
                                    std::span<double> out) const {
  const double lambda = lambda_;
  for (std::size_t i = 0; i < p.size(); ++i) {
    detail::require_probability(p[i], "Exponential.quantile");
    out[i] = p[i] <= 0.0   ? 0.0
             : p[i] >= 1.0 ? std::numeric_limits<double>::infinity()
                           : -std::log1p(-p[i]) / lambda;
  }
}

std::string Exponential::name() const { return "Exponential"; }

std::string Exponential::describe() const {
  std::ostringstream os;
  os << "Exponential(lambda=" << lambda_ << ")";
  return os.str();
}

std::string Exponential::to_key() const {
  return "exponential(lambda=" +
         stats::canonical_key_double(lambda_, "exponential.lambda") + ")";
}

}  // namespace sre::dist
