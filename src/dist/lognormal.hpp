#pragma once

// LogNormal(mu, sigma^2), support (0, inf). Table 1 instantiation: mu = 3,
// sigma = 0.5. Also the law fitted to the neuroscience traces of Fig. 1
// (VBMQA: mu = 7.1128, sigma = 0.2039) that drives the NeuroHPC scenario.
// MEAN-BY-MEAN closed form (Appendix B, Theorem 8):
//   E[X | X > tau] = e^{mu + sigma^2/2}
//       * [1 + erf((mu + sigma^2 - ln tau)/(sqrt2 sigma))]
//       / [1 - erf((ln tau - mu)/(sqrt2 sigma))].

#include "dist/distribution.hpp"

namespace sre::dist {

class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);

  /// Builds the law matching a desired mean/stddev of the variable itself
  /// (the Fig. 4 sweep; see stats::lognormal_from_moments).
  static LogNormal from_moments(double mean, double stddev);

  [[nodiscard]] double mu() const noexcept { return mu_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double sf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 protected:
  void do_cdf_batch(std::span<const double> t,
                    std::span<double> out) const override;
  void do_sf_batch(std::span<const double> t,
                   std::span<double> out) const override;
  void do_quantile_batch(std::span<const double> p,
                         std::span<double> out) const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace sre::dist
