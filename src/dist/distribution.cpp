#include "dist/distribution.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/metrics.hpp"
#include "stats/error.hpp"
#include "stats/integrate.hpp"

namespace sre::dist {

namespace {

/// Batch-size histogram shared by the three wrappers: the buckets tell
/// whether callers actually batch (discretization grids land in the
/// hundreds-to-thousands buckets) or degenerate to scalar calls.
obs::Histogram& batch_size_histogram() {
  static obs::Histogram& h = obs::histogram(
      "dist.cdf.batch_size", {1.0, 8.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0});
  return h;
}

}  // namespace

namespace detail {

void require_probability(double p, const char* context) {
  if (!(p >= 0.0 && p <= 1.0)) {  // NaN fails every comparison
    std::ostringstream os;
    os << context << ": probability argument " << p << " outside [0, 1]";
    throw ScenarioError(ErrorCode::kDomainError, os.str());
  }
}

}  // namespace detail

bool Support::bounded() const noexcept { return std::isfinite(upper); }

bool Support::contains(double t) const noexcept {
  return t >= lower && t <= upper;
}

double Distribution::sf(double t) const { return 1.0 - cdf(t); }

void Distribution::cdf_batch(std::span<const double> t,
                             std::span<double> out) const {
  assert(t.size() == out.size());
  static obs::Counter& calls = obs::counter("dist.cdf.batch_calls");
  calls.add();
  batch_size_histogram().observe(static_cast<double>(t.size()));
  do_cdf_batch(t, out);
}

void Distribution::sf_batch(std::span<const double> t,
                            std::span<double> out) const {
  assert(t.size() == out.size());
  static obs::Counter& calls = obs::counter("dist.sf.batch_calls");
  calls.add();
  batch_size_histogram().observe(static_cast<double>(t.size()));
  do_sf_batch(t, out);
}

void Distribution::quantile_batch(std::span<const double> p,
                                  std::span<double> out) const {
  assert(p.size() == out.size());
  static obs::Counter& calls = obs::counter("dist.quantile.batch_calls");
  calls.add();
  batch_size_histogram().observe(static_cast<double>(p.size()));
  do_quantile_batch(p, out);
}

void Distribution::do_cdf_batch(std::span<const double> t,
                                std::span<double> out) const {
  // Generic scalar-loop fallback: correct for any law, one virtual call per
  // element. Laws with closed forms override to strip the dispatch.
  for (std::size_t i = 0; i < t.size(); ++i) out[i] = cdf(t[i]);
}

void Distribution::do_sf_batch(std::span<const double> t,
                               std::span<double> out) const {
  for (std::size_t i = 0; i < t.size(); ++i) out[i] = sf(t[i]);
}

void Distribution::do_quantile_batch(std::span<const double> p,
                                     std::span<double> out) const {
  for (std::size_t i = 0; i < p.size(); ++i) out[i] = quantile(p[i]);
}

double Distribution::stddev() const { return std::sqrt(variance()); }

double Distribution::second_moment() const {
  const double m = mean();
  return variance() + m * m;
}

double Distribution::median() const { return quantile(0.5); }

double Distribution::sample(Rng& rng) const {
  // Inverse transform on a canonical uniform; u in [0,1) keeps quantile(1)
  // (possibly +inf) unreachable.
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  return quantile(u01(rng));
}

double Distribution::conditional_mean_above(double tau) const {
  return conditional_mean_above_numeric(tau);
}

double Distribution::conditional_mean_above_numeric(double tau) const {
  const Support s = support();
  const double lo = std::fmax(tau, s.lower);
  const double tail = sf(lo);
  if (!(tail > 0.0)) return tau;
  // Integrate up to the (1 - 1e-13) quantile when the support is unbounded;
  // the remaining tail mass contributes O(1e-13 * E[X]) which is below the
  // tolerance of every consumer.
  const double hi = s.bounded() ? s.upper : quantile(1.0 - 1e-13);
  if (!(hi > lo)) return tau;
  // Guard the t * f(t) product where the density diverges at the lower
  // support endpoint (e.g. Weibull with kappa < 1): the product tends to 0.
  const double num = stats::integrate(
      [this](double t) {
        const double v = t * pdf(t);
        return std::isfinite(v) ? v : 0.0;
      },
      lo, hi, 1e-12 * (1.0 + mean()));
  const double value = num / tail;
  // Conditioning can only move the mean upward from tau.
  return std::fmax(value, tau);
}

double Distribution::partial_expectation(double a, double b) const {
  if (!(b > a)) return 0.0;
  const double sfa = sf(a);
  if (!(sfa > 0.0)) return 0.0;
  const double sfb = sf(b);
  const double upper_a = conditional_mean_above(a) * sfa;
  const double upper_b = (sfb > 0.0) ? conditional_mean_above(b) * sfb : 0.0;
  // Clamp tiny negative values from cancellation.
  return std::fmax(upper_a - upper_b, 0.0);
}

std::string Distribution::describe() const { return name(); }

std::string Distribution::to_key() const {
  throw ScenarioError(ErrorCode::kDomainError,
                      name() + " does not define a canonical cache key");
}

}  // namespace sre::dist
