#include "dist/truncated_normal.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "stats/special_functions.hpp"

#include "stats/canonical.hpp"

namespace sre::dist {

namespace {
double norm_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}
}  // namespace

TruncatedNormal::TruncatedNormal(double mu, double sigma, double lower)
    : mu_(mu), sigma_(sigma), a_(lower) {
  assert(sigma > 0.0);
  const double alpha = (a_ - mu_) / sigma_;
  z_tail_ = 0.5 * std::erfc(alpha / std::sqrt(2.0));
  assert(z_tail_ > 0.0 && "truncation point removes all mass");
}

double TruncatedNormal::mills(double z) const {
  const double tail = 0.5 * std::erfc(z / std::sqrt(2.0));
  if (tail > 0.0) {
    const double value = norm_pdf(z) / tail;
    if (std::isfinite(value)) return value;
  }
  // Asymptotic expansion for z deep in the right tail.
  return z + 1.0 / z;
}

double TruncatedNormal::pdf(double t) const {
  if (t < a_) return 0.0;
  const double z = (t - mu_) / sigma_;
  return norm_pdf(z) / (sigma_ * z_tail_);
}

double TruncatedNormal::cdf(double t) const {
  if (t <= a_) return 0.0;
  const double z = (t - mu_) / sigma_;
  const double alpha = (a_ - mu_) / sigma_;
  const double value =
      (stats::norm_cdf(z) - stats::norm_cdf(alpha)) / z_tail_;
  return std::fmin(value, 1.0);
}

double TruncatedNormal::sf(double t) const {
  if (t <= a_) return 1.0;
  const double z = (t - mu_) / sigma_;
  return 0.5 * std::erfc(z / std::sqrt(2.0)) / z_tail_;
}

double TruncatedNormal::quantile(double p) const {
  detail::require_probability(p, "TruncatedNormal.quantile");
  if (p <= 0.0) return a_;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  const double alpha = (a_ - mu_) / sigma_;
  const double base = stats::norm_cdf(alpha);
  return mu_ + sigma_ * stats::norm_quantile(base + p * z_tail_);
}

double TruncatedNormal::mean() const {
  const double alpha = (a_ - mu_) / sigma_;
  return mu_ + sigma_ * mills(alpha);
}

double TruncatedNormal::variance() const {
  const double alpha = (a_ - mu_) / sigma_;
  const double lambda = mills(alpha);
  return sigma_ * sigma_ * (1.0 + alpha * lambda - lambda * lambda);
}

Support TruncatedNormal::support() const {
  return Support{a_, std::numeric_limits<double>::infinity()};
}

double TruncatedNormal::conditional_mean_above(double tau) const {
  // Conditioning a truncated normal further above tau >= a is the same as
  // conditioning the untruncated normal above max(tau, a).
  const double t = std::fmax(tau, a_);
  const double z = (t - mu_) / sigma_;
  const double value = mu_ + sigma_ * mills(z);
  if (std::isfinite(value) && value >= tau) return value;
  return conditional_mean_above_numeric(tau);
}

std::string TruncatedNormal::name() const { return "TruncatedNormal"; }

std::string TruncatedNormal::describe() const {
  std::ostringstream os;
  os << "TruncatedNormal(mu=" << mu_ << ", sigma=" << sigma_ << ", a=" << a_
     << ")";
  return os.str();
}

std::string TruncatedNormal::to_key() const {
  return "truncatednormal(mu=" +
         stats::canonical_key_double(mu_, "truncatednormal.mu") + ",sigma=" +
         stats::canonical_key_double(sigma_, "truncatednormal.sigma") +
         ",a=" + stats::canonical_key_double(a_, "truncatednormal.a") + ")";
}

}  // namespace sre::dist
