#include "dist/pareto.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "stats/canonical.hpp"

namespace sre::dist {

Pareto::Pareto(double scale, double alpha) : nu_(scale), alpha_(alpha) {
  assert(scale > 0.0 && alpha > 0.0);
}

double Pareto::pdf(double t) const {
  if (t < nu_) return 0.0;
  return alpha_ * std::pow(nu_, alpha_) / std::pow(t, alpha_ + 1.0);
}

double Pareto::cdf(double t) const {
  if (t <= nu_) return 0.0;
  return 1.0 - std::pow(nu_ / t, alpha_);
}

double Pareto::sf(double t) const {
  if (t <= nu_) return 1.0;
  return std::pow(nu_ / t, alpha_);
}

double Pareto::quantile(double p) const {
  detail::require_probability(p, "Pareto.quantile");
  if (p <= 0.0) return nu_;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return nu_ * std::pow(1.0 - p, -1.0 / alpha_);
}

double Pareto::mean() const {
  assert(alpha_ > 1.0 && "mean requires alpha > 1");
  return alpha_ * nu_ / (alpha_ - 1.0);
}

double Pareto::variance() const {
  assert(alpha_ > 2.0 && "variance requires alpha > 2");
  return alpha_ * nu_ * nu_ /
         ((alpha_ - 1.0) * (alpha_ - 1.0) * (alpha_ - 2.0));
}

Support Pareto::support() const {
  return Support{nu_, std::numeric_limits<double>::infinity()};
}

double Pareto::conditional_mean_above(double tau) const {
  assert(alpha_ > 1.0);
  const double t = std::fmax(tau, nu_);
  return alpha_ / (alpha_ - 1.0) * t;
}

void Pareto::do_cdf_batch(std::span<const double> t,
                          std::span<double> out) const {
  const double nu = nu_, alpha = alpha_;
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = t[i] <= nu ? 0.0 : 1.0 - std::pow(nu / t[i], alpha);
  }
}

void Pareto::do_sf_batch(std::span<const double> t,
                         std::span<double> out) const {
  const double nu = nu_, alpha = alpha_;
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = t[i] <= nu ? 1.0 : std::pow(nu / t[i], alpha);
  }
}

void Pareto::do_quantile_batch(std::span<const double> p,
                               std::span<double> out) const {
  const double nu = nu_, inv_alpha = -1.0 / alpha_;
  for (std::size_t i = 0; i < p.size(); ++i) {
    detail::require_probability(p[i], "Pareto.quantile");
    out[i] = p[i] <= 0.0   ? nu
             : p[i] >= 1.0 ? std::numeric_limits<double>::infinity()
                           : nu * std::pow(1.0 - p[i], inv_alpha);
  }
}

std::string Pareto::name() const { return "Pareto"; }

std::string Pareto::describe() const {
  std::ostringstream os;
  os << "Pareto(nu=" << nu_ << ", alpha=" << alpha_ << ")";
  return os.str();
}

std::string Pareto::to_key() const {
  return "pareto(nu=" + stats::canonical_key_double(nu_, "pareto.nu") +
         ",alpha=" + stats::canonical_key_double(alpha_, "pareto.alpha") +
         ")";
}

}  // namespace sre::dist
