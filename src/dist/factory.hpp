#pragma once

// Construction of distributions by name (for CLI tools and config-driven
// benches) and the nine Table 1 instantiations used throughout the paper's
// evaluation.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dist/distribution.hpp"

namespace sre::dist {

/// Parameter bag for make_distribution, e.g. {{"lambda", 1.0}}.
using ParamMap = std::map<std::string, double>;

/// Creates a distribution by case-insensitive name. Recognized names and
/// parameters:
///   exponential(lambda) | weibull(lambda, kappa) | gamma(alpha, beta) |
///   lognormal(mu, sigma) | truncatednormal(mu, sigma, a) |
///   pareto(nu, alpha) | uniform(a, b) | beta(alpha, beta) |
///   boundedpareto(L, H, alpha) | loglogistic(alpha, beta)
/// Returns nullptr for unknown names or missing parameters.
DistributionPtr make_distribution(const std::string& name,
                                  const ParamMap& params);

/// A named Table 1 instantiation.
struct PaperInstance {
  std::string label;      ///< row label as printed in the paper's tables
  DistributionPtr dist;   ///< the instantiated law
};

/// The nine distributions of Table 1 with the paper's parameter values, in
/// the paper's row order (infinite-support laws first).
std::vector<PaperInstance> paper_distributions();

/// A single Table 1 instantiation by label ("Exponential", "Weibull", ...).
std::optional<PaperInstance> paper_distribution(const std::string& label);

}  // namespace sre::dist
