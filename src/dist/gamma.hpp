#pragma once

// Gamma(alpha, beta) with shape alpha and rate beta, support [0, inf).
// Table 1 instantiation: alpha = 2, beta = 2. MEAN-BY-MEAN closed form
// (Appendix B, Theorem 7):
//   E[X | X > tau] = alpha/beta + (tau*beta)^alpha e^{-tau*beta}
//                                 / (Gamma(alpha, tau*beta) * beta).

#include "dist/distribution.hpp"

namespace sre::dist {

class Gamma final : public Distribution {
 public:
  Gamma(double alpha, double beta);

  [[nodiscard]] double shape() const noexcept { return alpha_; }
  [[nodiscard]] double rate() const noexcept { return beta_; }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double sf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] Support support() const override;
  [[nodiscard]] double conditional_mean_above(double tau) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string to_key() const override;

 private:
  double alpha_;
  double beta_;
  double log_norm_;  // alpha*log(beta) - lgamma(alpha), cached
};

}  // namespace sre::dist
