#pragma once

// Online reservation planning when the execution-time law is *not* known in
// advance -- the situation a lab faces before it has accumulated the Fig. 1
// trace. Jobs arrive sequentially; each completed job reveals its exact
// execution time (the successful reservation observes it); every
// refit_interval completions the scheduler rebuilds its plan by running the
// Theorem 5 dynamic program on the empirical distribution of everything
// seen so far, with a safety extension past the empirical maximum for the
// still-unseen tail. As the empirical law converges, the plan's cost
// converges to the clairvoyant (known-distribution) optimum.

#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"
#include "core/sequence.hpp"
#include "dist/distribution.hpp"

namespace sre::platform {

struct AdaptiveOptions {
  std::size_t refit_interval = 25;  ///< jobs between plan rebuilds
  std::size_t warmup_jobs = 8;      ///< jobs served by the prior plan
  double prior_guess = 1.0;         ///< first reservation of the prior plan
  /// The rebuilt plan appends a reservation at safety_factor * max observed
  /// time, insuring against a tail the sample has not shown yet.
  double safety_factor = 2.0;
};

class AdaptiveScheduler {
 public:
  AdaptiveScheduler(core::CostModel model, AdaptiveOptions opts = {});

  /// Executes one job of true size x under the current plan, records the
  /// observation, refits on schedule, and returns the cost paid.
  double run_job(double x);

  [[nodiscard]] const core::ReservationSequence& current_plan() const noexcept {
    return plan_;
  }
  [[nodiscard]] std::size_t jobs_seen() const noexcept {
    return history_.size();
  }
  [[nodiscard]] const std::vector<double>& history() const noexcept {
    return history_;
  }

 private:
  void refit();

  core::CostModel model_;
  AdaptiveOptions opts_;
  core::ReservationSequence plan_;
  std::vector<double> history_;
};

/// Outcome of an adaptive campaign against a hidden truth.
struct CampaignResult {
  double total_cost = 0.0;
  double mean_cost = 0.0;
  /// Mean cost per consecutive window of `window` jobs (learning curve).
  std::vector<double> window_mean_cost;
  std::size_t window = 0;
  /// Mean cost of the final (converged) plan, measured on the last window.
  double final_window_cost = 0.0;
};

/// Streams n_jobs sampled from `truth` through an AdaptiveScheduler.
CampaignResult run_adaptive_campaign(const dist::Distribution& truth,
                                     std::size_t n_jobs,
                                     const core::CostModel& model,
                                     const AdaptiveOptions& opts,
                                     std::uint64_t seed,
                                     std::size_t window = 50);

}  // namespace sre::platform
