#include "platform/hpc.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/rng.hpp"

namespace sre::platform {

core::CostModel hpc_cost_model(const WaitTimeModel& w) noexcept {
  return core::CostModel{w.slope, 1.0, w.intercept};
}

std::vector<JobLogEntry> synthesize_queue_log(const QueueLogConfig& cfg) {
  assert(cfg.groups >= 2 && cfg.jobs_per_group >= 1);
  assert(cfg.max_request > cfg.min_request);
  sim::Rng rng = sim::make_rng(cfg.seed);
  std::normal_distribution<double> noise(0.0, cfg.noise_stddev);
  std::uniform_real_distribution<double> jitter(-0.5, 0.5);

  const double step =
      (cfg.max_request - cfg.min_request) / static_cast<double>(cfg.groups - 1);
  std::vector<JobLogEntry> log;
  log.reserve(cfg.groups * cfg.jobs_per_group);
  for (std::size_t g = 0; g < cfg.groups; ++g) {
    const double center = cfg.min_request + step * static_cast<double>(g);
    for (std::size_t j = 0; j < cfg.jobs_per_group; ++j) {
      JobLogEntry e;
      // Requests scatter a little around the group center, as real users'
      // round-number requests do within a cluster.
      e.requested = std::max(cfg.min_request * 0.5,
                             center + 0.2 * step * jitter(rng));
      e.waited = std::max(0.0, cfg.truth.wait(e.requested) + noise(rng));
      log.push_back(e);
    }
  }
  return log;
}

QueueLogFit fit_queue_log(const std::vector<JobLogEntry>& log,
                          std::size_t groups) {
  assert(!log.empty() && groups >= 2);
  QueueLogFit out;

  double lo = log.front().requested, hi = log.front().requested;
  for (const auto& e : log) {
    lo = std::min(lo, e.requested);
    hi = std::max(hi, e.requested);
  }
  const double width = std::max(hi - lo, 1e-12);

  std::vector<double> sum_req(groups, 0.0), sum_wait(groups, 0.0);
  std::vector<double> count(groups, 0.0);
  for (const auto& e : log) {
    auto bin = static_cast<std::size_t>((e.requested - lo) / width *
                                        static_cast<double>(groups));
    if (bin >= groups) bin = groups - 1;
    sum_req[bin] += e.requested;
    sum_wait[bin] += e.waited;
    count[bin] += 1.0;
  }
  for (std::size_t g = 0; g < groups; ++g) {
    if (count[g] == 0.0) continue;
    out.group_requested.push_back(sum_req[g] / count[g]);
    out.group_mean_wait.push_back(sum_wait[g] / count[g]);
    out.group_weight.push_back(count[g]);
  }
  const stats::AffineFit fit = stats::fit_affine_weighted(
      out.group_requested, out.group_mean_wait, out.group_weight);
  out.model.slope = fit.slope;
  out.model.intercept = fit.intercept;
  out.r_squared = fit.r_squared;
  return out;
}

}  // namespace sre::platform
