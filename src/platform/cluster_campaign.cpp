#include "platform/cluster_campaign.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "sim/rng.hpp"

namespace sre::platform {

namespace {

/// Bookkeeping for one measured job as it walks its plan.
struct MeasuredJob {
  double true_runtime = 0.0;
  double first_submit = 0.0;
  std::size_t next_attempt = 0;      ///< index into the plan
  std::uint64_t fault_attempt = 0;   ///< per-job fault stream index
  InVivoJobResult result;
};

double reservation_at(const core::ReservationSequence& plan,
                      std::size_t attempt) {
  if (attempt < plan.size()) return plan[attempt];
  double cur = plan.last();
  for (std::size_t i = plan.size(); i <= attempt; ++i) cur *= 2.0;
  return cur;
}

}  // namespace

InVivoCampaignResult run_in_vivo_campaign(const dist::Distribution& truth,
                                          const core::ReservationSequence& plan,
                                          const InVivoCampaignConfig& cfg) {
  assert(!plan.empty() && cfg.measured_jobs >= 1);
  assert(cfg.measured_width >= 1 && cfg.measured_width <= cfg.cluster.nodes);

  // Background traffic defines the contention regime and the time horizon.
  const auto background = sim::synthesize_cluster_workload(cfg.background);
  double makespan = 0.0;
  for (const auto& j : background) makespan = std::max(makespan, j.submit_time);

  sim::Rng rng = sim::make_rng(cfg.seed);
  std::uniform_real_distribution<double> submit_u(
      0.0, makespan * cfg.submit_horizon_fraction);

  sim::BackfillCluster cluster(cfg.cluster);
  for (const auto& j : background) cluster.submit(j);

  // Measured jobs, tracked by the cluster-assigned job id of their current
  // attempt.
  std::vector<MeasuredJob> measured(cfg.measured_jobs);
  struct AttemptInfo {
    std::size_t measured = 0;
    bool interrupted = false;  ///< lost to an injected fault, retry the level
  };
  std::map<std::size_t, AttemptInfo> attempt_owner;  // cluster id -> info
  const sim::FaultPlan fault_plan(cfg.faults);

  const auto submit_attempt = [&](std::size_t m, double when) {
    MeasuredJob& job = measured[m];
    const double reserved = reservation_at(plan, job.next_attempt);
    sim::ClusterJob attempt;
    attempt.submit_time = when;
    attempt.width = cfg.measured_width;
    attempt.requested = reserved;
    attempt.actual = std::min(reserved, job.true_runtime);

    // Injected platform faults (deterministic per measured job): a bounced
    // launch occupies nothing; an interruption truncates the run. Either
    // way the reservation was never proven too short, so the job stays at
    // its current plan level and retries it on completion.
    bool interrupted = false;
    const sim::ScenarioFaults jf = fault_plan.for_scenario(m);
    const std::uint64_t a = job.fault_attempt++;
    if (jf.launch_fails(a)) {
      attempt.actual = 0.0;
      interrupted = true;
    } else {
      const double cut = jf.interruption_after(a);
      if (cut < attempt.actual) {
        attempt.actual = cut;
        interrupted = true;
      }
    }

    const std::size_t id = cluster.submit(attempt);
    attempt_owner[id] = AttemptInfo{m, interrupted};
    if (!interrupted) ++job.next_attempt;
  };

  for (std::size_t m = 0; m < cfg.measured_jobs; ++m) {
    measured[m].true_runtime = truth.sample(rng);
    measured[m].first_submit = submit_u(rng);
    submit_attempt(m, measured[m].first_submit);
  }

  // Hard cap on resubmissions as a runaway guard; the implicit doubling
  // tail makes this unreachable for any sane plan.
  constexpr std::size_t kMaxAttempts = 64;

  cluster.run([&](const sim::ScheduledJob& record, double now) {
    const auto it = attempt_owner.find(record.index);
    if (it == attempt_owner.end()) return;  // background job
    const AttemptInfo info = it->second;
    MeasuredJob& job = measured[info.measured];
    InVivoJobResult& r = job.result;
    ++r.attempts;
    r.total_wait += record.wait;
    r.total_occupancy += record.job.actual;
    if (info.interrupted) ++r.interrupted_attempts;
    const bool success =
        !info.interrupted && job.true_runtime <= record.job.requested;
    if (success) {
      r.completed = true;
      r.turnaround = now - job.first_submit;
      r.true_runtime = job.true_runtime;
    } else if (r.attempts < kMaxAttempts) {
      // Attempt-count guard (not plan-level): under a fault storm a job can
      // retry one level many times without advancing.
      submit_attempt(info.measured, now);
    }
  });

  InVivoCampaignResult out;
  out.jobs.reserve(measured.size());
  double turn = 0.0, wait = 0.0, attempts = 0.0, occupancy = 0.0;
  for (auto& job : measured) {
    job.result.true_runtime = job.true_runtime;
    if (!job.result.completed) ++out.incomplete;
    turn += job.result.turnaround;
    wait += job.result.total_wait;
    attempts += static_cast<double>(job.result.attempts);
    occupancy += job.result.total_occupancy;
    out.interrupted_attempts += job.result.interrupted_attempts;
    out.jobs.push_back(job.result);
  }
  const auto n = static_cast<double>(measured.size());
  out.mean_turnaround = turn / n;
  out.mean_wait = wait / n;
  out.mean_attempts = attempts / n;
  out.mean_occupancy = occupancy / n;
  return out;
}

}  // namespace sre::platform
