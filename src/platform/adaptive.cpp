#include "platform/adaptive.hpp"

#include <algorithm>
#include <cassert>

#include "core/heuristics/dp_discretization.hpp"
#include "dist/discrete.hpp"
#include "sim/rng.hpp"

namespace sre::platform {

namespace {

core::ReservationSequence prior_plan(double guess) {
  // Doubling ladder from the prior guess; the implicit tail of
  // ReservationSequence covers anything beyond.
  std::vector<double> v;
  double t = guess;
  for (int i = 0; i < 12; ++i) {
    v.push_back(t);
    t *= 2.0;
  }
  return core::ReservationSequence(std::move(v));
}

}  // namespace

AdaptiveScheduler::AdaptiveScheduler(core::CostModel model,
                                     AdaptiveOptions opts)
    : model_(model), opts_(opts), plan_(prior_plan(opts.prior_guess)) {
  assert(model_.valid());
  assert(opts_.prior_guess > 0.0 && opts_.safety_factor >= 1.0);
}

double AdaptiveScheduler::run_job(double x) {
  assert(x > 0.0);
  const double cost = plan_.cost_for(x, model_);
  history_.push_back(x);
  const std::size_t n = history_.size();
  if (n >= opts_.warmup_jobs &&
      (n == opts_.warmup_jobs || n % opts_.refit_interval == 0)) {
    refit();
  }
  return cost;
}

void AdaptiveScheduler::refit() {
  const dist::DiscreteDistribution empirical =
      dist::DiscreteDistribution::from_samples(history_);
  const core::DpResult dp = core::dp_optimal_sequence(empirical, model_);
  std::vector<double> values = dp.sequence.values();
  // Insure against the unseen tail: one extra reservation well past the
  // empirical maximum (the implicit doubling tail handles the rest).
  const double guard = values.back() * opts_.safety_factor;
  if (guard > values.back()) values.push_back(guard);
  plan_ = core::ReservationSequence(std::move(values));
}

CampaignResult run_adaptive_campaign(const dist::Distribution& truth,
                                     std::size_t n_jobs,
                                     const core::CostModel& model,
                                     const AdaptiveOptions& opts,
                                     std::uint64_t seed, std::size_t window) {
  assert(n_jobs > 0 && window > 0);
  AdaptiveScheduler scheduler(model, opts);
  sim::Rng rng = sim::make_rng(seed);

  CampaignResult out;
  out.window = window;
  double window_sum = 0.0;
  std::size_t in_window = 0;
  for (std::size_t i = 0; i < n_jobs; ++i) {
    const double cost = scheduler.run_job(truth.sample(rng));
    out.total_cost += cost;
    window_sum += cost;
    if (++in_window == window) {
      out.window_mean_cost.push_back(window_sum / static_cast<double>(window));
      window_sum = 0.0;
      in_window = 0;
    }
  }
  if (in_window > 0) {
    out.window_mean_cost.push_back(window_sum /
                                   static_cast<double>(in_window));
  }
  out.mean_cost = out.total_cost / static_cast<double>(n_jobs);
  out.final_window_cost = out.window_mean_cost.back();
  return out;
}

}  // namespace sre::platform
