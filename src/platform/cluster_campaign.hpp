#pragma once

// In-vivo evaluation of reservation strategies. The paper's NeuroHPC cost
// model *assumes* wait(r) = alpha r + gamma and scores plans analytically;
// here the same plans are executed inside a live EASY-backfill cluster
// simulation: each measured job submits its first reservation, and when the
// scheduler kills it at the requested walltime the next reservation of the
// plan is resubmitted -- waits emerge from actual queue contention,
// including the contention the strategy itself creates. This closes the
// loop between the paper's model and a platform.

#include <cstdint>
#include <vector>

#include "core/sequence.hpp"
#include "dist/distribution.hpp"
#include "sim/fault.hpp"
#include "sim/queue_sim.hpp"

namespace sre::platform {

/// One measured job's end-to-end outcome.
struct InVivoJobResult {
  double true_runtime = 0.0;
  std::size_t attempts = 0;
  std::size_t interrupted_attempts = 0;  ///< attempts lost to injected faults
  double total_wait = 0.0;        ///< queueing time summed over attempts
  double total_occupancy = 0.0;   ///< machine time consumed (all attempts)
  double turnaround = 0.0;        ///< completion - first submission
  bool completed = false;         ///< plan (plus tail) covered the job
};

struct InVivoCampaignConfig {
  sim::ClusterConfig cluster{};              ///< 409 nodes by default
  sim::ClusterWorkloadConfig background{};   ///< contention traffic
  std::size_t measured_jobs = 200;           ///< strategy-driven jobs
  std::size_t measured_width = 16;           ///< nodes per measured job
  double submit_horizon_fraction = 0.8;      ///< spread over this much of
                                             ///< the background makespan
  std::uint64_t seed = 12;
  /// Deterministic fault injection on the measured jobs: launch failures
  /// bounce an attempt (it occupies nothing and the same reservation is
  /// resubmitted), interruptions kill a running attempt after Exp(rate)
  /// machine time (the partial run is lost, same reservation resubmitted).
  /// Background traffic is unaffected. Disabled by default.
  sim::FaultSpec faults{};
};

struct InVivoCampaignResult {
  std::vector<InVivoJobResult> jobs;
  double mean_turnaround = 0.0;
  double mean_wait = 0.0;
  double mean_attempts = 0.0;
  double mean_occupancy = 0.0;
  std::size_t incomplete = 0;
  std::uint64_t interrupted_attempts = 0;  ///< total injected-fault losses
};

/// Runs `cfg.measured_jobs` jobs with execution times drawn from `truth`
/// through the cluster, each following `plan` (reservations past the stored
/// plan continue by doubling). Background jobs create contention.
InVivoCampaignResult run_in_vivo_campaign(const dist::Distribution& truth,
                                          const core::ReservationSequence& plan,
                                          const InVivoCampaignConfig& cfg);

}  // namespace sre::platform
