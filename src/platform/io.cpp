#include "platform/io.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

namespace sre::platform {

namespace {

bool is_blank_or_comment(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Parses the last comma-separated field of a line as a double.
std::optional<double> parse_last_field(const std::string& line) {
  const std::size_t comma = line.find_last_of(',');
  const std::string field =
      (comma == std::string::npos) ? line : line.substr(comma + 1);
  std::istringstream is(field);
  double value = 0.0;
  if (!(is >> value)) return std::nullopt;
  std::string rest;
  if (is >> rest) return std::nullopt;  // trailing garbage
  return value;
}

void set_error(ParseError* error, std::size_t line,
               const std::string& message) {
  if (error != nullptr) *error = ParseError{line, message};
}

/// Clips a line for inclusion in a diagnostic (a corrupt file can put
/// megabytes on one line; the message should not).
std::string excerpt(const std::string& line) {
  constexpr std::size_t kMax = 80;
  if (line.size() <= kMax) return line;
  return line.substr(0, kMax) + "...";
}

}  // namespace

std::string ParseError::to_string() const { return message; }

std::optional<std::vector<double>> read_trace_csv(const std::string& path,
                                                  ParseError* error) {
  std::ifstream in(path);
  if (!in) {
    set_error(error, 0, "cannot open " + path);
    return std::nullopt;
  }
  std::vector<double> values;
  std::string line;
  std::size_t line_no = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.size() > kMaxCsvLineBytes) {
      set_error(error, line_no,
                path + ":" + std::to_string(line_no) + ": line exceeds " +
                    std::to_string(kMaxCsvLineBytes) + " bytes");
      return std::nullopt;
    }
    if (is_blank_or_comment(line)) continue;
    const auto value = parse_last_field(line);
    if (!value) {
      if (first_data_line) {
        first_data_line = false;  // tolerate one header line
        continue;
      }
      set_error(error, line_no,
                path + ":" + std::to_string(line_no) + ": not a number: '" +
                    excerpt(line) + "'");
      return std::nullopt;
    }
    first_data_line = false;
    if (!(*value > 0.0) || !std::isfinite(*value)) {
      set_error(error, line_no,
                path + ":" + std::to_string(line_no) +
                    ": execution times must be positive and finite");
      return std::nullopt;
    }
    values.push_back(*value);
  }
  if (values.empty()) {
    set_error(error, 0, path + ": no samples found");
    return std::nullopt;
  }
  return values;
}

std::optional<std::vector<double>> read_trace_csv(const std::string& path,
                                                  std::string* error) {
  ParseError parse_error;
  auto out = read_trace_csv(path, &parse_error);
  if (!out && error != nullptr) *error = parse_error.to_string();
  return out;
}

bool write_trace_csv(const std::string& path, std::span<const double> values) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  for (const double v : values) out << v << "\n";
  return static_cast<bool>(out);
}

bool write_sequence_csv(const std::string& path,
                        const core::ReservationSequence& seq) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << "index,reservation\n";
  for (std::size_t i = 0; i < seq.size(); ++i) {
    out << (i + 1) << "," << seq[i] << "\n";
  }
  return static_cast<bool>(out);
}

std::optional<core::ReservationSequence> read_sequence_csv(
    const std::string& path, ParseError* error) {
  const auto values = read_trace_csv(path, error);
  if (!values) return std::nullopt;
  auto seq = core::ReservationSequence::try_create(*values);
  if (!seq) {
    set_error(error, 0,
              path + ": values are not a strictly increasing "
                     "positive sequence");
  }
  return seq;
}

std::optional<core::ReservationSequence> read_sequence_csv(
    const std::string& path, std::string* error) {
  ParseError parse_error;
  auto out = read_sequence_csv(path, &parse_error);
  if (!out && error != nullptr) *error = parse_error.to_string();
  return out;
}

}  // namespace sre::platform
