#pragma once

// The NeuroHPC scenario configuration (Section 5.3 / Fig. 4): a LogNormal
// execution-time law derived from the VBMQA trace, costed under the affine
// HPC waiting-time model, with mean/stdev sweeps for robustness analysis.
// All quantities are expressed in hours, matching the paper's figure axes.

#include "dist/lognormal.hpp"
#include "platform/hpc.hpp"
#include "platform/trace.hpp"

namespace sre::platform {

struct NeuroHpcScenario {
  /// VBMQA fit, times in seconds (converted to hours internally).
  stats::LogNormalParams base{kVbmqaMu, kVbmqaSigma};
  /// Fig. 2(b) fit: alpha = 0.95, gamma = 1.05 h.
  WaitTimeModel wait{};

  static constexpr double kSecondsPerHour = 3600.0;

  /// Mean of the base law in hours (~0.348 h in the paper).
  [[nodiscard]] double base_mean_hours() const;
  /// Standard deviation of the base law in hours (~0.072 h).
  [[nodiscard]] double base_stddev_hours() const;

  /// The execution-time law, in hours, with its mean and stddev scaled by
  /// the given factors (Fig. 4 sweeps both up to x10). Re-instantiation
  /// uses the exact moment identities (see stats::lognormal_from_moments).
  [[nodiscard]] dist::LogNormal distribution(double mean_scale = 1.0,
                                             double stdev_scale = 1.0) const;

  /// alpha = 0.95, beta = 1, gamma = 1.05 (hours).
  [[nodiscard]] core::CostModel cost_model() const;
};

}  // namespace sre::platform
