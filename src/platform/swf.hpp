#pragma once

// Standard Workload Format (SWF) ingestion -- the format of the Parallel
// Workloads Archive that the scheduling literature (including the studies
// the paper cites for Fig. 2) distributes its cluster logs in. An SWF line
// has 18 whitespace-separated fields; this reader consumes the ones the
// library needs:
//   field 1  job id            field 2  submit time (s)
//   field 4  run time (s)      field 5  allocated processors
//   field 8  requested time (s)
// ';' lines are header comments. Negative/-1 fields mean "unknown" and the
// affected jobs are skipped (counted in the result).
//
// Two consumers: the execution-time *trace* of a chosen job class feeds the
// Fig. 1 fitting pipeline, and the full log replays through the backfill
// cluster simulator.

#include <optional>
#include <string>
#include <vector>

#include "sim/queue_sim.hpp"

namespace sre::platform {

struct SwfJob {
  long id = 0;
  double submit = 0.0;     ///< seconds since log start
  double runtime = 0.0;    ///< actual run time, seconds
  double requested = 0.0;  ///< requested wall time, seconds
  std::size_t processors = 1;
};

struct SwfLog {
  std::vector<SwfJob> jobs;
  std::size_t skipped = 0;  ///< lines with unknown/invalid key fields
  std::vector<std::string> header;  ///< the ';' comment lines
};

/// Parses an SWF file. Returns nullopt only on I/O failure or if *no* valid
/// job is found; individually malformed lines are skipped and counted.
std::optional<SwfLog> read_swf(const std::string& path,
                               std::string* error = nullptr);

/// Parses SWF content from a string (for tests and embedded logs).
std::optional<SwfLog> parse_swf(const std::string& content,
                                std::string* error = nullptr);

/// The execution-time trace (seconds) of jobs matching a processor-count
/// band -- the "same job class" filtering behind Fig. 1/Fig. 2 groupings.
std::vector<double> swf_runtimes(const SwfLog& log, std::size_t min_procs = 1,
                                 std::size_t max_procs = SIZE_MAX);

/// Converts the log into cluster-simulator jobs (times in hours). Jobs
/// whose actual runtime exceeds their request are clamped to the request,
/// mirroring the walltime kill.
std::vector<sim::ClusterJob> swf_to_cluster_jobs(const SwfLog& log,
                                                 std::size_t max_width);

}  // namespace sre::platform
