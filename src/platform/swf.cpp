#include "platform/swf.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace sre::platform {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

// Sanity bounds on fields that get cast to integers. A double outside the
// target type's range makes the cast undefined behavior, so corrupt logs
// (NaN ids, 1e300 processor counts) must be rejected *before* casting —
// no real archive log comes near these.
constexpr double kMaxJobId = 1e15;
constexpr double kMaxProcessors = 1e9;
// Times beyond ~300 million years flag corruption, not a long job.
constexpr double kMaxSeconds = 1e16;

std::optional<SwfJob> parse_line(const std::string& line) {
  std::istringstream is(line);
  // SWF fields 1..18; we read the first 8 and ignore the rest.
  double f[8];
  for (double& v : f) {
    if (!(is >> v)) return std::nullopt;
  }
  // Finite-and-in-range checks first: every cast below is UB otherwise.
  if (!(std::fabs(f[0]) <= kMaxJobId)) return std::nullopt;  // rejects NaN too
  if (!(f[4] <= kMaxProcessors)) return std::nullopt;
  if (!std::isfinite(f[1]) || !std::isfinite(f[3]) || !std::isfinite(f[7])) {
    return std::nullopt;
  }
  SwfJob job;
  job.id = static_cast<long>(f[0]);
  job.submit = f[1];
  job.runtime = f[3];
  job.processors = (f[4] > 0.0) ? static_cast<std::size_t>(f[4]) : 0;
  job.requested = f[7];
  // -1 marks unknown; runtimes and requests must be positive to be usable.
  if (!(job.submit >= 0.0) || job.submit > kMaxSeconds ||
      !(job.runtime > 0.0) || job.runtime > kMaxSeconds ||
      job.processors == 0) {
    return std::nullopt;
  }
  if (!(job.requested > 0.0) || job.requested > kMaxSeconds) {
    // Some logs omit the request; fall back to the runtime (a job that ran
    // to completion requested at least that much).
    job.requested = job.runtime;
  }
  return job;
}

}  // namespace

std::optional<SwfLog> parse_swf(const std::string& content,
                                std::string* error) {
  SwfLog log;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == ';') {
      log.header.push_back(line);
      continue;
    }
    if (const auto job = parse_line(line)) {
      log.jobs.push_back(*job);
    } else {
      ++log.skipped;
    }
  }
  if (log.jobs.empty()) {
    set_error(error, "no valid SWF job lines found");
    return std::nullopt;
  }
  std::stable_sort(log.jobs.begin(), log.jobs.end(),
                   [](const SwfJob& a, const SwfJob& b) {
                     return a.submit < b.submit;
                   });
  return log;
}

std::optional<SwfLog> read_swf(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    set_error(error, "cannot open " + path);
    return std::nullopt;
  }
  std::ostringstream content;
  content << in.rdbuf();
  return parse_swf(content.str(), error);
}

std::vector<double> swf_runtimes(const SwfLog& log, std::size_t min_procs,
                                 std::size_t max_procs) {
  std::vector<double> out;
  for (const auto& job : log.jobs) {
    if (job.processors >= min_procs && job.processors <= max_procs) {
      out.push_back(job.runtime);
    }
  }
  return out;
}

std::vector<sim::ClusterJob> swf_to_cluster_jobs(const SwfLog& log,
                                                 std::size_t max_width) {
  constexpr double kSecondsPerHour = 3600.0;
  std::vector<sim::ClusterJob> jobs;
  jobs.reserve(log.jobs.size());
  for (const auto& job : log.jobs) {
    sim::ClusterJob cj;
    cj.submit_time = job.submit / kSecondsPerHour;
    cj.width = std::min<std::size_t>(std::max<std::size_t>(job.processors, 1),
                                     max_width);
    cj.requested = std::max(job.requested, job.runtime) / kSecondsPerHour;
    cj.actual = job.runtime / kSecondsPerHour;
    jobs.push_back(cj);
  }
  return jobs;
}

}  // namespace sre::platform
