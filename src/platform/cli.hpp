#pragma once

// Minimal command-line plumbing for the planner tools: a flag parser and
// spec parsers that turn strings like "lognormal:mu=3,sigma=0.5" and
// "brute-force" into library objects. Lives in the library (not the tools)
// so the parsing logic is unit-tested.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/heuristics/heuristic.hpp"
#include "dist/distribution.hpp"

namespace sre::platform {

/// "--flag value" / "--switch" style parser; everything else is positional.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// The value following "--flag", if present.
  [[nodiscard]] std::optional<std::string> value(const std::string& flag) const;
  /// True if "--flag" appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& flag) const;
  [[nodiscard]] double value_or(const std::string& flag,
                                double fallback) const;
  [[nodiscard]] std::string value_or(const std::string& flag,
                                     const std::string& fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Parses "name:key=value,key=value", e.g. "weibull:lambda=1,kappa=0.5" or
/// a bare Table 1 label like "lognormal" (which selects the paper's
/// instantiation). Returns nullptr and sets *error on failure.
dist::DistributionPtr parse_distribution_spec(const std::string& spec,
                                              std::string* error = nullptr);

/// Parses a heuristic name (case-insensitive): brute-force | mean-by-mean |
/// mean-stdev | mean-doubling | median-by-median | equal-time |
/// equal-probability. Returns nullptr and sets *error on failure.
core::HeuristicPtr parse_heuristic_spec(const std::string& name,
                                        std::string* error = nullptr);

/// Names accepted by parse_heuristic_spec (for usage messages).
std::vector<std::string> heuristic_names();

}  // namespace sre::platform
