#include "platform/workload.hpp"

#include <cassert>

namespace sre::platform {

double NeuroHpcScenario::base_mean_hours() const {
  return stats::lognormal_mean(base) / kSecondsPerHour;
}

double NeuroHpcScenario::base_stddev_hours() const {
  return stats::lognormal_stddev(base) / kSecondsPerHour;
}

dist::LogNormal NeuroHpcScenario::distribution(double mean_scale,
                                               double stdev_scale) const {
  assert(mean_scale > 0.0 && stdev_scale > 0.0);
  return dist::LogNormal::from_moments(base_mean_hours() * mean_scale,
                                       base_stddev_hours() * stdev_scale);
}

core::CostModel NeuroHpcScenario::cost_model() const {
  return hpc_cost_model(wait);
}

}  // namespace sre::platform
