#include "platform/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/rng.hpp"
#include "stats/summary.hpp"

namespace sre::platform {

std::vector<double> synthesize_trace(const TraceConfig& cfg) {
  assert(cfg.runs > 0);
  const dist::LogNormal law(cfg.truth.mu, cfg.truth.sigma);
  return sim::draw_samples(law, cfg.runs, cfg.seed);
}

TraceFit fit_trace(std::span<const double> samples) {
  assert(!samples.empty());
  TraceFit out;
  out.fitted = stats::fit_lognormal_mle(samples);
  stats::OnlineMoments m;
  for (const double s : samples) m.add(s);
  out.sample_mean = m.mean();
  out.sample_stddev = std::sqrt(m.sample_variance());
  out.runs = samples.size();
  const dist::LogNormal model(out.fitted.mu, out.fitted.sigma);
  out.ks_statistic = ks_statistic(samples, model);
  return out;
}

dist::DistributionPtr distribution_from_trace(
    std::span<const double> samples) {
  const stats::LogNormalParams p = stats::fit_lognormal_mle(samples);
  return std::make_shared<dist::LogNormal>(p.mu, p.sigma);
}

dist::DistributionPtr empirical_distribution(std::span<const double> samples) {
  return std::make_shared<dist::DiscreteDistribution>(
      dist::DiscreteDistribution::from_samples(samples));
}

dist::DistributionPtr interpolated_distribution(std::span<const double> samples,
                                                std::size_t bins) {
  return std::make_shared<dist::HistogramDistribution>(
      dist::HistogramDistribution::from_samples(samples, bins));
}

double ks_statistic(std::span<const double> samples,
                    const dist::Distribution& model) {
  assert(!samples.empty());
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double ks = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = model.cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    ks = std::max({ks, std::fabs(f - lo), std::fabs(f - hi)});
  }
  return ks;
}

}  // namespace sre::platform
