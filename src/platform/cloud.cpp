#include "platform/cloud.hpp"

namespace sre::platform {

core::CostModel reserved_cost_model(const CloudPricing& pricing) noexcept {
  return core::CostModel{pricing.reserved_rate, 0.0,
                         pricing.reservation_overhead};
}

double on_demand_expected_cost(const dist::Distribution& d,
                               const CloudPricing& pricing) {
  return pricing.on_demand_rate * d.mean();
}

RiDecision advise_reserved_vs_on_demand(const dist::Distribution& d,
                                        const CloudPricing& pricing,
                                        const core::Heuristic& h,
                                        const core::EvaluationOptions& opts) {
  const core::CostModel model = reserved_cost_model(pricing);
  core::HeuristicEvaluation eval = evaluate_heuristic(h, d, model, opts);

  RiDecision out;
  out.strategy = eval.name;
  out.sequence = std::move(eval.sequence);
  out.reserved_expected_cost = eval.expected_cost_mc;
  out.on_demand_cost = on_demand_expected_cost(d, pricing);
  out.normalized_cost = eval.normalized_mc;
  out.use_reserved = out.reserved_expected_cost <= out.on_demand_cost;
  if (out.on_demand_cost > 0.0) {
    out.savings_fraction =
        1.0 - out.reserved_expected_cost / out.on_demand_cost;
  }
  return out;
}

double break_even_price_ratio(const dist::Distribution& d,
                              const core::Heuristic& h,
                              double reservation_overhead,
                              const core::EvaluationOptions& opts) {
  CloudPricing unit;
  unit.reserved_rate = 1.0;
  unit.on_demand_rate = 1.0;  // irrelevant to the normalized cost
  unit.reservation_overhead = reservation_overhead;
  const core::CostModel model = reserved_cost_model(unit);
  const core::HeuristicEvaluation eval = evaluate_heuristic(h, d, model, opts);
  return eval.normalized_mc;
}

}  // namespace sre::platform
