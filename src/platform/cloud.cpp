#include "platform/cloud.hpp"

#include "sim/event_sim.hpp"
#include "sim/rng.hpp"

namespace sre::platform {

core::CostModel reserved_cost_model(const CloudPricing& pricing) noexcept {
  return core::CostModel{pricing.reserved_rate, 0.0,
                         pricing.reservation_overhead};
}

double on_demand_expected_cost(const dist::Distribution& d,
                               const CloudPricing& pricing) {
  return pricing.on_demand_rate * d.mean();
}

RiDecision advise_reserved_vs_on_demand(const dist::Distribution& d,
                                        const CloudPricing& pricing,
                                        const core::Heuristic& h,
                                        const core::EvaluationOptions& opts) {
  const core::CostModel model = reserved_cost_model(pricing);
  core::HeuristicEvaluation eval = evaluate_heuristic(h, d, model, opts);

  RiDecision out;
  out.strategy = eval.name;
  out.sequence = std::move(eval.sequence);
  out.reserved_expected_cost = eval.expected_cost_mc;
  out.on_demand_cost = on_demand_expected_cost(d, pricing);
  out.normalized_cost = eval.normalized_mc;
  out.use_reserved = out.reserved_expected_cost <= out.on_demand_cost;
  if (out.on_demand_cost > 0.0) {
    out.savings_fraction =
        1.0 - out.reserved_expected_cost / out.on_demand_cost;
  }
  return out;
}

double break_even_price_ratio(const dist::Distribution& d,
                              const core::Heuristic& h,
                              double reservation_overhead,
                              const core::EvaluationOptions& opts) {
  CloudPricing unit;
  unit.reserved_rate = 1.0;
  unit.on_demand_rate = 1.0;  // irrelevant to the normalized cost
  unit.reservation_overhead = reservation_overhead;
  const core::CostModel model = reserved_cost_model(unit);
  const core::HeuristicEvaluation eval = evaluate_heuristic(h, d, model, opts);
  return eval.normalized_mc;
}

SpotAssessment assess_spot_strategy(const dist::Distribution& d,
                                    const CloudPricing& pricing,
                                    const core::Heuristic& h,
                                    const sim::FaultSpec& faults,
                                    std::size_t n_jobs, std::uint64_t seed,
                                    const core::EvaluationOptions& opts) {
  const core::CostModel model = reserved_cost_model(pricing);
  core::HeuristicEvaluation eval = evaluate_heuristic(h, d, model, opts);

  SpotAssessment out;
  out.strategy = eval.name;
  out.sequence = std::move(eval.sequence);
  out.jobs = n_jobs;
  if (n_jobs == 0) return out;

  const sim::ReservationCostParams costs{model.alpha, model.beta, model.gamma};
  const sim::PlatformSimulator platform(out.sequence.values(), costs);
  const sim::FaultPlan plan(faults);
  const std::vector<double> jobs = sim::draw_samples(d, n_jobs, seed);

  double cost = 0.0, base_cost = 0.0, attempts = 0.0, waste = 0.0;
  for (std::size_t j = 0; j < n_jobs; ++j) {
    const sim::JobOutcome faulty =
        platform.run_job_with_faults(jobs[j], plan.for_scenario(j));
    const sim::JobOutcome clean = platform.run_job(jobs[j]);
    cost += faulty.total_cost;
    base_cost += clean.total_cost;
    attempts += static_cast<double>(faulty.attempts);
    waste += faulty.wasted_time;
  }
  const double n = static_cast<double>(n_jobs);
  out.mean_cost = cost / n;
  out.fault_free_mean_cost = base_cost / n;
  out.cost_inflation =
      out.fault_free_mean_cost > 0.0 ? out.mean_cost / out.fault_free_mean_cost
                                     : 1.0;
  out.mean_attempts = attempts / n;
  out.mean_waste = waste / n;
  return out;
}

}  // namespace sre::platform
