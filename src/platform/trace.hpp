#pragma once

// Trace ingestion pipeline (Fig. 1). The paper characterizes two
// neuroscience applications from >5000 runs each and fits LogNormal laws
// (VBMQA: mu = 7.1128, sigma = 0.2039, times in seconds). The raw Vanderbilt
// database is not redistributable, so this module synthesizes an equivalent
// trace from the published fitted law and runs the identical downstream
// pipeline: trace -> MLE fit -> distribution object -> reservation
// strategies. A Kolmogorov-Smirnov statistic quantifies fit quality.

#include <cstdint>
#include <span>
#include <vector>

#include "dist/discrete.hpp"
#include "dist/histogram.hpp"
#include "dist/lognormal.hpp"
#include "stats/fitting.hpp"

namespace sre::platform {

/// Published VBMQA fit (Fig. 1b), execution times in seconds.
inline constexpr double kVbmqaMu = 7.1128;
inline constexpr double kVbmqaSigma = 0.2039;

struct TraceConfig {
  stats::LogNormalParams truth{kVbmqaMu, kVbmqaSigma};
  std::size_t runs = 5000;  ///< the paper's traces hold >5000 runs
  std::uint64_t seed = 2016;
};

/// Synthesizes a trace of execution times (seconds) from the configured law.
std::vector<double> synthesize_trace(const TraceConfig& cfg);

struct TraceFit {
  stats::LogNormalParams fitted{};
  double sample_mean = 0.0;
  double sample_stddev = 0.0;
  std::size_t runs = 0;
  /// Kolmogorov-Smirnov distance between the empirical CDF and the fit.
  double ks_statistic = 0.0;
};

/// MLE LogNormal fit of a trace plus goodness-of-fit summary.
TraceFit fit_trace(std::span<const double> samples);

/// The fitted LogNormal as a Distribution (the object the reservation
/// heuristics consume).
dist::DistributionPtr distribution_from_trace(std::span<const double> samples);

/// Nonparametric alternative: the empirical distribution of the trace
/// itself, usable directly by the Theorem 5 dynamic program.
dist::DistributionPtr empirical_distribution(std::span<const double> samples);

/// Nonparametric *continuous* alternative: a piecewise-uniform histogram
/// interpolation of the trace (the "interpolated trace" law of the NeuroHPC
/// methodology). Smooth enough for the Eq. (11) recurrence and the
/// brute-force search.
dist::DistributionPtr interpolated_distribution(std::span<const double> samples,
                                                std::size_t bins = 64);

/// sup_t |F_empirical(t) - F_model(t)| over the sample points.
double ks_statistic(std::span<const double> samples,
                    const dist::Distribution& model);

}  // namespace sre::platform
