#pragma once

// HPC queue model (the NeuroHPC scenario of Section 5.3). On a large
// supercomputer the "cost" of a reservation of length r is its turnaround:
// the queue waiting time -- empirically affine in the requested runtime
// (Fig. 2): wait(r) = slope * r + intercept -- plus the execution time
// actually consumed. That maps onto Eq. (1) with alpha = slope, beta = 1,
// gamma = intercept. The paper fits (slope = 0.95, intercept = 1.05 h) to
// Intrepid logs; we synthesize an equivalent log (see DESIGN.md
// substitutions) and recover the parameters by weighted least squares.

#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"
#include "stats/fitting.hpp"

namespace sre::platform {

/// Affine waiting-time model wait(r) = slope * r + intercept.
struct WaitTimeModel {
  double slope = 0.95;
  double intercept = 1.05;  ///< hours (3771.84 s in the paper)

  [[nodiscard]] double wait(double requested) const noexcept {
    return slope * requested + intercept;
  }
};

/// The NeuroHPC cost model: alpha = slope, beta = 1, gamma = intercept.
core::CostModel hpc_cost_model(const WaitTimeModel& w) noexcept;

/// One job in a synthetic scheduler log.
struct JobLogEntry {
  double requested = 0.0;  ///< requested runtime
  double waited = 0.0;     ///< observed queue wait
};

struct QueueLogConfig {
  WaitTimeModel truth{};          ///< ground-truth affine law
  std::size_t groups = 20;        ///< request-size clusters (as in Fig. 2)
  std::size_t jobs_per_group = 50;
  double min_request = 0.25;      ///< smallest requested runtime
  double max_request = 12.0;      ///< largest requested runtime
  double noise_stddev = 0.5;      ///< per-job wait noise (truncated at 0)
  std::uint64_t seed = 7;
};

/// Synthesizes a scheduler log whose mean wait per group follows `truth`.
std::vector<JobLogEntry> synthesize_queue_log(const QueueLogConfig& cfg);

/// Fig. 2 reproduction: cluster the log into `groups` request-size bins,
/// average each bin, and fit an affine model through the bin means
/// (weighted by bin population).
struct QueueLogFit {
  WaitTimeModel model{};
  double r_squared = 0.0;
  std::vector<double> group_requested;  ///< bin mean requested runtime
  std::vector<double> group_mean_wait;  ///< bin mean wait
  std::vector<double> group_weight;     ///< bin population
};

QueueLogFit fit_queue_log(const std::vector<JobLogEntry>& log,
                          std::size_t groups);

}  // namespace sre::platform
