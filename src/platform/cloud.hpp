#pragma once

// Cloud platform model (the RESERVATIONONLY scenario of Section 5.2): an
// Amazon-AWS-style service offering Reserved capacity at rate c_RI per
// reserved unit and On-Demand capacity at rate c_OD per consumed unit, with
// c_OD / c_RI up to ~4 in the paper's discussion. Reserving is worthwhile
// exactly when the strategy's normalized expected cost is below c_OD/c_RI.

#include <cstdint>
#include <string>

#include "core/heuristics/heuristic.hpp"
#include "sim/fault.hpp"

namespace sre::platform {

struct CloudPricing {
  double reserved_rate = 1.0;          ///< c_RI per reserved unit
  double on_demand_rate = 4.0;         ///< c_OD per consumed unit
  double reservation_overhead = 0.0;   ///< fixed fee per reservation (gamma)

  [[nodiscard]] double price_ratio() const noexcept {
    return on_demand_rate / reserved_rate;
  }
};

/// Cost model of running under Reserved pricing: alpha = c_RI, beta = 0,
/// gamma = the per-reservation overhead.
core::CostModel reserved_cost_model(const CloudPricing& pricing) noexcept;

/// Expected cost of pure On-Demand: c_OD * E[X] (the omniscient cost at
/// on-demand rates -- no reservation risk, premium rate).
double on_demand_expected_cost(const dist::Distribution& d,
                               const CloudPricing& pricing);

/// Outcome of comparing a reservation strategy against On-Demand.
struct RiDecision {
  std::string strategy;
  core::ReservationSequence sequence;
  double reserved_expected_cost = 0.0;  ///< under Reserved pricing
  double on_demand_cost = 0.0;          ///< under On-Demand pricing
  double normalized_cost = 0.0;         ///< strategy cost / omniscient-at-RI
  bool use_reserved = false;            ///< reserved beats on-demand
  double savings_fraction = 0.0;        ///< 1 - reserved/on_demand (if +)
};

/// Evaluates `h` on `d` under `pricing` and recommends Reserved vs
/// On-Demand.
RiDecision advise_reserved_vs_on_demand(
    const dist::Distribution& d, const CloudPricing& pricing,
    const core::Heuristic& h, const core::EvaluationOptions& opts = {});

/// The price ratio c_OD/c_RI at which `h`'s strategy exactly breaks even on
/// `d` -- i.e. the strategy's normalized expected cost. A market ratio above
/// this favors Reserved.
double break_even_price_ratio(const dist::Distribution& d,
                              const core::Heuristic& h,
                              double reservation_overhead = 0.0,
                              const core::EvaluationOptions& opts = {});

/// Spot-regime assessment of a reservation strategy: how much the expected
/// cost inflates when the platform can bounce launches and interrupt
/// reservations mid-run (the sim::FaultSpec knobs), estimated by replaying
/// n_jobs sampled jobs through the fault-aware platform simulator.
struct SpotAssessment {
  std::string strategy;
  core::ReservationSequence sequence;
  std::size_t jobs = 0;
  double mean_cost = 0.0;           ///< under faults
  double fault_free_mean_cost = 0.0;
  /// mean_cost / fault_free_mean_cost: the premium the fault regime adds.
  /// Reserved capacity at this inflation still beats On-Demand when
  /// inflation * normalized cost < c_OD / c_RI.
  double cost_inflation = 1.0;
  double mean_attempts = 0.0;
  double mean_waste = 0.0;
};

/// Deterministic for fixed (faults.seed, seed): job sizes and every fault
/// decision replay identically. Jobs use fault stream ids = job index.
SpotAssessment assess_spot_strategy(const dist::Distribution& d,
                                    const CloudPricing& pricing,
                                    const core::Heuristic& h,
                                    const sim::FaultSpec& faults,
                                    std::size_t n_jobs = 1000,
                                    std::uint64_t seed = 42,
                                    const core::EvaluationOptions& opts = {});

}  // namespace sre::platform
