#pragma once

// Cloud platform model (the RESERVATIONONLY scenario of Section 5.2): an
// Amazon-AWS-style service offering Reserved capacity at rate c_RI per
// reserved unit and On-Demand capacity at rate c_OD per consumed unit, with
// c_OD / c_RI up to ~4 in the paper's discussion. Reserving is worthwhile
// exactly when the strategy's normalized expected cost is below c_OD/c_RI.

#include <string>

#include "core/heuristics/heuristic.hpp"

namespace sre::platform {

struct CloudPricing {
  double reserved_rate = 1.0;          ///< c_RI per reserved unit
  double on_demand_rate = 4.0;         ///< c_OD per consumed unit
  double reservation_overhead = 0.0;   ///< fixed fee per reservation (gamma)

  [[nodiscard]] double price_ratio() const noexcept {
    return on_demand_rate / reserved_rate;
  }
};

/// Cost model of running under Reserved pricing: alpha = c_RI, beta = 0,
/// gamma = the per-reservation overhead.
core::CostModel reserved_cost_model(const CloudPricing& pricing) noexcept;

/// Expected cost of pure On-Demand: c_OD * E[X] (the omniscient cost at
/// on-demand rates -- no reservation risk, premium rate).
double on_demand_expected_cost(const dist::Distribution& d,
                               const CloudPricing& pricing);

/// Outcome of comparing a reservation strategy against On-Demand.
struct RiDecision {
  std::string strategy;
  core::ReservationSequence sequence;
  double reserved_expected_cost = 0.0;  ///< under Reserved pricing
  double on_demand_cost = 0.0;          ///< under On-Demand pricing
  double normalized_cost = 0.0;         ///< strategy cost / omniscient-at-RI
  bool use_reserved = false;            ///< reserved beats on-demand
  double savings_fraction = 0.0;        ///< 1 - reserved/on_demand (if +)
};

/// Evaluates `h` on `d` under `pricing` and recommends Reserved vs
/// On-Demand.
RiDecision advise_reserved_vs_on_demand(
    const dist::Distribution& d, const CloudPricing& pricing,
    const core::Heuristic& h, const core::EvaluationOptions& opts = {});

/// The price ratio c_OD/c_RI at which `h`'s strategy exactly breaks even on
/// `d` -- i.e. the strategy's normalized expected cost. A market ratio above
/// this favors Reserved.
double break_even_price_ratio(const dist::Distribution& d,
                              const core::Heuristic& h,
                              double reservation_overhead = 0.0,
                              const core::EvaluationOptions& opts = {});

}  // namespace sre::platform
