#include "platform/cli.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/moment_based.hpp"
#include "core/heuristics/refined_dp.hpp"
#include "dist/factory.hpp"

namespace sre::platform {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string flag = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[flag] = argv[++i];
      } else {
        flags_[flag] = "";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::optional<std::string> ArgParser::value(const std::string& flag) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

bool ArgParser::has(const std::string& flag) const {
  return flags_.count(flag) > 0;
}

double ArgParser::value_or(const std::string& flag, double fallback) const {
  const auto v = value(flag);
  if (!v) return fallback;
  std::istringstream is(*v);
  double out = fallback;
  is >> out;
  return out;
}

std::string ArgParser::value_or(const std::string& flag,
                                const std::string& fallback) const {
  return value(flag).value_or(fallback);
}

dist::DistributionPtr parse_distribution_spec(const std::string& spec,
                                              std::string* error) {
  const std::size_t colon = spec.find(':');
  const std::string name = lower(spec.substr(0, colon));
  if (colon == std::string::npos) {
    // Bare label: the paper's Table 1 instantiation.
    if (const auto inst = dist::paper_distribution(name)) return inst->dist;
    set_error(error, "unknown distribution label '" + name +
                         "' (and no parameters given)");
    return nullptr;
  }
  dist::ParamMap params;
  std::istringstream rest(spec.substr(colon + 1));
  std::string kv;
  while (std::getline(rest, kv, ',')) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      set_error(error, "malformed parameter '" + kv + "' (want key=value)");
      return nullptr;
    }
    std::istringstream vs(kv.substr(eq + 1));
    double v = 0.0;
    if (!(vs >> v)) {
      set_error(error, "parameter '" + kv + "' has a non-numeric value");
      return nullptr;
    }
    params[lower(kv.substr(0, eq))] = v;
  }
  auto d = dist::make_distribution(name, params);
  if (!d) {
    set_error(error, "unknown distribution '" + name +
                         "' or missing parameters");
  }
  return d;
}

core::HeuristicPtr parse_heuristic_spec(const std::string& name,
                                        std::string* error) {
  const std::string n = lower(name);
  if (n == "brute-force" || n == "bruteforce" || n == "bf") {
    return std::make_shared<core::BruteForce>();
  }
  if (n == "mean-by-mean") return std::make_shared<core::MeanByMean>();
  if (n == "mean-stdev") return std::make_shared<core::MeanStdev>();
  if (n == "mean-doubling") return std::make_shared<core::MeanDoubling>();
  if (n == "median-by-median" || n == "med-by-med") {
    return std::make_shared<core::MedianByMedian>();
  }
  if (n == "equal-time") {
    return std::make_shared<core::DiscretizedDp>(sim::DiscretizationOptions{
        1000, 1e-7, sim::DiscretizationScheme::kEqualTime});
  }
  if (n == "equal-probability" || n == "equal-prob") {
    return std::make_shared<core::DiscretizedDp>(sim::DiscretizationOptions{
        1000, 1e-7, sim::DiscretizationScheme::kEqualProbability});
  }
  if (n == "refined-dp") return std::make_shared<core::RefinedDp>();
  set_error(error, "unknown heuristic '" + name + "'");
  return nullptr;
}

std::vector<std::string> heuristic_names() {
  return {"brute-force",      "mean-by-mean",     "mean-stdev",
          "mean-doubling",    "median-by-median", "equal-time",
          "equal-probability", "refined-dp"};
}

}  // namespace sre::platform
