#pragma once

// CSV ingestion and export: execution-time traces in (one value per line,
// '#' comments and a non-numeric header tolerated), reservation plans out.
// Errors are reported via std::optional + message, not exceptions, so CLI
// tools can degrade gracefully.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/sequence.hpp"

namespace sre::platform {

/// Reads a single-column trace. Returns nullopt on I/O failure or if any
/// non-comment line fails to parse as a positive number; *error explains.
std::optional<std::vector<double>> read_trace_csv(const std::string& path,
                                                  std::string* error = nullptr);

/// Writes one value per line. Returns false on I/O failure.
bool write_trace_csv(const std::string& path, std::span<const double> values);

/// Writes "index,reservation" rows with a header line.
bool write_sequence_csv(const std::string& path,
                        const core::ReservationSequence& seq);

/// Reads a plan written by write_sequence_csv (or any single/double column
/// file whose last column is the reservation length).
std::optional<core::ReservationSequence> read_sequence_csv(
    const std::string& path, std::string* error = nullptr);

}  // namespace sre::platform
