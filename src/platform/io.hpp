#pragma once

// CSV ingestion and export: execution-time traces in (one value per line,
// '#' comments and a non-numeric header tolerated), reservation plans out.
// Errors are reported via std::optional + a typed ParseError (with the
// 1-based line number), not exceptions, so CLI tools can degrade
// gracefully. Hostile input — truncated lines, NaN/inf/negative durations,
// multi-megabyte fields — is rejected with a diagnostic, never undefined
// behavior or silent garbage (tests/test_io.cpp fuzzes this contract).

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/sequence.hpp"

namespace sre::platform {

/// Where and why an ingest failed. line == 0 means a file-level problem
/// (unopenable, empty); otherwise it is the 1-based offending line.
struct ParseError {
  std::size_t line = 0;
  std::string message;

  /// "path:line: message" (or "path: message" for file-level errors).
  [[nodiscard]] std::string to_string() const;
};

/// Input lines longer than this are rejected as malformed rather than
/// buffered without bound (no legitimate trace row comes close).
inline constexpr std::size_t kMaxCsvLineBytes = 64 * 1024;

/// Reads a single-column trace. Returns nullopt on I/O failure or if any
/// non-comment line fails to parse as a positive finite number; *error
/// explains, with the offending line number.
std::optional<std::vector<double>> read_trace_csv(const std::string& path,
                                                  ParseError* error);

/// String-message convenience overload (existing CLI surface); the message
/// is ParseError::to_string().
std::optional<std::vector<double>> read_trace_csv(const std::string& path,
                                                  std::string* error = nullptr);

/// Writes one value per line. Returns false on I/O failure.
bool write_trace_csv(const std::string& path, std::span<const double> values);

/// Writes "index,reservation" rows with a header line.
bool write_sequence_csv(const std::string& path,
                        const core::ReservationSequence& seq);

/// Reads a plan written by write_sequence_csv (or any single/double column
/// file whose last column is the reservation length).
std::optional<core::ReservationSequence> read_sequence_csv(
    const std::string& path, ParseError* error);

/// String-message convenience overload; see read_trace_csv.
std::optional<core::ReservationSequence> read_sequence_csv(
    const std::string& path, std::string* error = nullptr);

}  // namespace sre::platform
