#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/minijson.hpp"

namespace sre::obs {

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  if (std::isnan(v)) return "\"nan\"";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double roundtrip = 0.0;
  std::sscanf(buf, "%lf", &roundtrip);
  if (roundtrip == v) {
    // Try shorter forms for readability; keep the first that round-trips.
    for (int prec = 6; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      std::sscanf(shorter, "%lf", &roundtrip);
      if (roundtrip == v) return shorter;
    }
  }
  return buf;
}

namespace {

std::string fmt_double(double v) { return format_double(v); }

std::string quote(const std::string& s) {
  return "\"" + minijson::escape(s) + "\"";
}

}  // namespace

std::string report_json() {
  std::ostringstream os;
  os << "{\n";

  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_snapshot()) {
    os << (first ? "\n" : ",\n") << "    " << quote(name) << ": " << v;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_snapshot()) {
    os << (first ? "\n" : ",\n") << "    " << quote(name) << ": "
       << fmt_double(v);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_snapshot()) {
    os << (first ? "\n" : ",\n") << "    " << quote(name) << ": {\n"
       << "      \"count\": " << h.count << ",\n"
       << "      \"sum\": " << fmt_double(h.sum) << ",\n"
       << "      \"max\": " << fmt_double(h.max) << ",\n"
       << "      \"p50\": " << fmt_double(h.quantile(0.50)) << ",\n"
       << "      \"p95\": " << fmt_double(h.quantile(0.95)) << ",\n"
       << "      \"p99\": " << fmt_double(h.quantile(0.99)) << ",\n"
       << "      \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      const std::string le =
          i < h.bounds.size() ? fmt_double(h.bounds[i]) : "\"inf\"";
      os << (i == 0 ? "" : ", ") << "{\"le\": " << le
         << ", \"count\": " << h.buckets[i] << "}";
    }
    os << "]\n    }";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"spans\": {";
  first = true;
  for (const auto& [name, s] : spans_snapshot()) {
    os << (first ? "\n" : ",\n") << "    " << quote(name)
       << ": {\"count\": " << s.count << ", \"total_ns\": " << s.total_ns
       << ", \"max_ns\": " << s.max_ns << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n";

  os << "}\n";
  return os.str();
}

bool write_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << report_json();
  return static_cast<bool>(out);
}

}  // namespace sre::obs
