#include "obs/wide.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/minijson.hpp"
#include "obs/report.hpp"

#ifndef STOCHRES_OBS_DISABLE
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#endif

namespace sre::obs::wide {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<ClockFn> g_clock{nullptr};

/// a - b, clamped at 0: a stage stamped "before" its predecessor (possible
/// only through clock injection or a stage that never ran) yields a zero
/// component instead of a 2^64 garbage duration.
std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) noexcept {
  return a > b ? a - b : 0;
}

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

void append_str(std::string& out, std::string_view v) {
  out += '"';
  out += minijson::escape(v);
  out += '"';
}

}  // namespace

void set_clock(ClockFn fn) noexcept {
  g_clock.store(fn, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  const ClockFn fn = g_clock.load(std::memory_order_relaxed);
  return fn ? fn() : steady_now_ns();
}

// -- format_event ------------------------------------------------------------

std::string format_event(const Event& event) {
  const std::uint64_t queue_ns = sat_sub(event.batched_ns, event.admitted_ns);
  const std::uint64_t solve_ns = sat_sub(event.solved_ns, event.batched_ns);
  const std::uint64_t write_ns = sat_sub(event.flushed_ns, event.slotted_ns);
  const std::uint64_t total_ns = sat_sub(event.flushed_ns, event.accepted_ns);

  std::string out;
  out.reserve(320);
  out += "{\"ts\":";
  append_u64(out, event.flushed_ns);
  out += ",\"id\":";
  append_str(out, event.id);
  out += ",\"conn\":";
  append_u64(out, event.conn);
  out += ",\"peer\":";
  append_str(out, event.peer);
  if (!event.trace.empty()) {
    out += ",\"trace\":";
    append_str(out, event.trace);
  }
  out += ",\"ok\":";
  out += event.ok ? "true" : "false";
  if (!event.ok) {
    out += ",\"code\":";
    append_str(out, event.code);
    if (event.retry_after_ms > 0.0) {
      out += ",\"retry_after_ms\":";
      out += format_double(event.retry_after_ms);
    }
  }
  out += ",\"cached\":";
  out += event.cached ? "true" : "false";
  out += ",\"batch\":";
  append_u64(out, event.batch);
  out += ",\"bytes_in\":";
  append_u64(out, event.bytes_in);
  out += ",\"bytes_out\":";
  append_u64(out, event.bytes_out);
  out += ",\"queue_ns\":";
  append_u64(out, queue_ns);
  out += ",\"solve_ns\":";
  append_u64(out, solve_ns);
  out += ",\"write_ns\":";
  append_u64(out, write_ns);
  out += ",\"total_ns\":";
  append_u64(out, total_ns);
  out += ",\"accepted_ns\":";
  append_u64(out, event.accepted_ns);
  out += ",\"framed_ns\":";
  append_u64(out, event.framed_ns);
  out += ",\"admitted_ns\":";
  append_u64(out, event.admitted_ns);
  out += ",\"batched_ns\":";
  append_u64(out, event.batched_ns);
  out += ",\"solved_ns\":";
  append_u64(out, event.solved_ns);
  out += ",\"slotted_ns\":";
  append_u64(out, event.slotted_ns);
  out += ",\"flushed_ns\":";
  append_u64(out, event.flushed_ns);
  out += '}';
  return out;
}

// -- Sink --------------------------------------------------------------------

#ifndef STOCHRES_OBS_DISABLE

struct Sink::Impl {
  std::FILE* file = nullptr;
  std::size_t capacity = 0;

  std::mutex m;
  std::condition_variable cv;  // wakes the flusher
  std::deque<std::string> queue;
  bool paused = false;
  bool stop = false;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> written{0};
  std::atomic<std::uint64_t> dropped{0};

  std::thread flusher;

  void run() {
    std::deque<std::string> batch;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(m);
        // A paused flusher simulates a stalled disk — but shutdown always
        // drains, so a test that forgets to unpause cannot lose events.
        cv.wait(lock, [&] { return stop || (!queue.empty() && !paused); });
        if (queue.empty() && stop) break;
        if (queue.empty()) continue;
        batch.swap(queue);
      }
      for (const auto& line : batch) {
        std::fwrite(line.data(), 1, line.size(), file);
        std::fputc('\n', file);
      }
      std::fflush(file);
      written.fetch_add(batch.size(), std::memory_order_relaxed);
      counter("obs.wide.written").add(batch.size());
      batch.clear();
    }
  }
};

std::unique_ptr<Sink> Sink::open(const SinkConfig& config) {
  if (config.path.empty()) return nullptr;
  auto impl = std::make_unique<Impl>();
  impl->capacity = config.capacity > 0 ? config.capacity : 1;
  impl->file = std::fopen(config.path.c_str(), "wb");
  if (impl->file == nullptr) {
    throw std::runtime_error("obs::wide: cannot open access log: " +
                             config.path);
  }
  impl->flusher = std::thread([raw = impl.get()] { raw->run(); });
  return std::unique_ptr<Sink>(new Sink(std::move(impl)));
}

Sink::Sink(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

Sink::~Sink() {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->flusher.join();
  std::fclose(impl_->file);
}

bool Sink::try_write(std::string line) {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    if (impl_->queue.size() >= impl_->capacity) {
      impl_->dropped.fetch_add(1, std::memory_order_relaxed);
      counter("obs.wide.dropped").add();
      return false;
    }
    impl_->queue.push_back(std::move(line));
    impl_->accepted.fetch_add(1, std::memory_order_relaxed);
  }
  impl_->cv.notify_one();
  return true;
}

void Sink::set_paused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->paused = paused;
  }
  impl_->cv.notify_all();
}

std::uint64_t Sink::accepted() const noexcept {
  return impl_->accepted.load(std::memory_order_relaxed);
}
std::uint64_t Sink::written() const noexcept {
  return impl_->written.load(std::memory_order_relaxed);
}
std::uint64_t Sink::dropped() const noexcept {
  return impl_->dropped.load(std::memory_order_relaxed);
}

#else  // STOCHRES_OBS_DISABLE — the access log does not exist.

struct Sink::Impl {};

std::unique_ptr<Sink> Sink::open(const SinkConfig&) { return nullptr; }
Sink::Sink(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Sink::~Sink() = default;
bool Sink::try_write(std::string) { return false; }
void Sink::set_paused(bool) {}
std::uint64_t Sink::accepted() const noexcept { return 0; }
std::uint64_t Sink::written() const noexcept { return 0; }
std::uint64_t Sink::dropped() const noexcept { return 0; }

#endif  // STOCHRES_OBS_DISABLE

// -- SnapshotRing ------------------------------------------------------------

SnapshotRing::SnapshotRing(std::size_t capacity)
    : ring_(capacity > 0 ? capacity : 1) {}

void SnapshotRing::push(const Snapshot& snapshot) {
  ring_[head_] = snapshot;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

const Snapshot& SnapshotRing::oldest() const {
  if (size_ == 0) throw std::out_of_range("SnapshotRing::oldest: empty");
  return size_ < ring_.size() ? ring_[0]
                              : ring_[head_];  // head_ is the next overwrite
}

const Snapshot& SnapshotRing::newest() const {
  if (size_ == 0) throw std::out_of_range("SnapshotRing::newest: empty");
  return ring_[(head_ + ring_.size() - 1) % ring_.size()];
}

// -- prometheus_text ---------------------------------------------------------

namespace {

/// Dotted instrument name -> Prometheus metric name ("srv.conn.open" ->
/// "sre_srv_conn_open"). Dots and any other non-[a-zA-Z0-9_] byte become
/// underscores.
std::string prom_name(const std::string& name) {
  std::string out = "sre_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string prometheus_text() {
  std::string out =
      "# sre metrics registry, Prometheus text exposition (obs::wide)\n";
  for (const auto& [name, value] : counters_snapshot()) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges_snapshot()) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + format_double(value) + "\n";
  }
  for (const auto& [name, h] : histograms_snapshot()) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " summary\n";
    for (const double q : {0.5, 0.95, 0.99}) {
      out += p + "{quantile=\"" + format_double(q) + "\"} " +
             format_double(h.count > 0 ? h.quantile(q) : 0.0) + "\n";
    }
    out += p + "_sum " + format_double(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
  }
  for (const auto& [name, s] : spans_snapshot()) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + "_count counter\n";
    out += p + "_count " + std::to_string(s.count) + "\n";
    out += "# TYPE " + p + "_total_ns counter\n";
    out += p + "_total_ns " + std::to_string(s.total_ns) + "\n";
  }
  return out;
}

}  // namespace sre::obs::wide
