#pragma once

// A minimal dependency-free JSON reader for the observability tooling: the
// obsdiff baseline comparison (tools/obsdiff.cpp), the recorder's trace
// round-trip tests, and anything else that needs to look inside the JSON
// this repo emits (report_json(), BENCH_sweep.json, Chrome trace files).
//
// Scope: full RFC 8259 syntax on input (objects, arrays, strings with
// escapes, numbers, bools, null); numbers surface as double, which is exact
// for every integer the metrics layer emits below 2^53. Not an allocator
// battleground — documents here are kilobytes, clarity wins. Unlike the
// rest of obs this is offline analysis code: it is NOT compiled out under
// STOCHRES_OBS_DISABLE.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sre::obs::minijson {

/// A parsed JSON value. Object member order is preserved (handy for stable
/// re-serialization in tests), lookup is linear — fine at tooling scale.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }

  /// First member named `key`, or nullptr (also for non-objects).
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
};

struct ParseResult {
  bool ok = false;
  Value value;
  std::string error;      ///< empty on success
  std::size_t offset = 0; ///< byte offset of the first error
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// is an error). Nesting deeper than 64 levels is rejected.
ParseResult parse(std::string_view text);

/// RFC 8259 string escaping (quotes, backslash, control characters as
/// \uXXXX), *without* the surrounding quotes. The writer-side complement of
/// parse(), shared by every hand-rolled JSON emitter in the repo so error
/// messages with arbitrary content stay parseable.
std::string escape(std::string_view text);

}  // namespace sre::obs::minijson
