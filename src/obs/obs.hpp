#pragma once

// Master switches for the observability layer (metrics + spans).
//
// Two independent kill switches:
//  * Runtime: obs::set_enabled(false) turns every instrument into a
//    relaxed-load-and-branch; handles stay registered, values freeze.
//  * Compile time: defining STOCHRES_OBS_DISABLE (CMake -DSRE_OBS_DISABLE=ON)
//    compiles every instrument down to an empty inline function; the
//    registry still exists so report_json() callers link, but it stays
//    empty. compiled_in() lets tests skip assertions that need live data.
//
// The layer sits below stats in the dependency order (obs < stats < dist <
// sim < core < platform) and depends only on the standard library, so any
// layer may instrument itself.

#include <atomic>

namespace sre::obs {

namespace detail {
// Single process-wide switch. Relaxed accesses: instrumentation tolerates
// observing a toggle late; the flip itself is not a synchronization point.
inline std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}
}  // namespace detail

/// False when the layer was compiled out with STOCHRES_OBS_DISABLE.
constexpr bool compiled_in() noexcept {
#ifdef STOCHRES_OBS_DISABLE
  return false;
#else
  return true;
#endif
}

/// Runtime master switch (default: on). Cheap to read from hot paths.
inline bool enabled() noexcept {
#ifdef STOCHRES_OBS_DISABLE
  return false;
#else
  return detail::enabled_flag().load(std::memory_order_relaxed);
#endif
}

inline void set_enabled(bool on) noexcept {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// RAII toggle for tests: forces the switch to `on`, restores on exit.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) noexcept : prev_(enabled()) { set_enabled(on); }
  ~ScopedEnable() { set_enabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

}  // namespace sre::obs
