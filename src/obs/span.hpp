#pragma once

// Lightweight hierarchical tracing spans. A Span measures the wall time of
// one scope and folds it into the per-label SpanStats aggregate at exit
// (call count, total ns, max ns); nesting is tracked with a thread-local
// depth so unbalanced instrumentation is detectable and the deepest
// observed nesting is reported ("obs.span.max_depth" gauge).
//
// Idiom (the handle lookup is hoisted out of the hot path):
//
//   static obs::SpanStats& series = obs::span_series("heuristic.refined_dp");
//   obs::Span span(series);
//
// Spans opened inside thread-pool tasks are logically fresh roots: the pool
// wraps each task in a TaskScope, so a task helped along on a blocked
// caller's stack nests (and counts) exactly like one run by a worker. Label
// aggregation is therefore deterministic for a deterministic workload even
// though which thread ran a task is not.

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/recorder.hpp"

namespace sre::obs {

namespace detail {
std::uint64_t now_ns() noexcept;
int& thread_span_depth() noexcept;
void note_depth(int depth) noexcept;
}  // namespace detail

/// RAII span; see file comment for the cached-handle idiom.
class Span {
 public:
  explicit Span(SpanStats& series) noexcept {
#ifndef STOCHRES_OBS_DISABLE
    if (!enabled()) return;
    series_ = &series;
    detail::note_depth(++detail::thread_span_depth());
    if (recorder::armed()) {
      trace_token_ = recorder::emit_begin(series.trace_label());
    }
    start_ns_ = detail::now_ns();
#else
    (void)series;
#endif
  }

  ~Span() {
#ifndef STOCHRES_OBS_DISABLE
    if (series_ == nullptr) return;
    const std::uint64_t end_ns = detail::now_ns();
    series_->record(end_ns - start_ns_);
    if (trace_token_ != 0) recorder::emit_end(trace_token_, end_ns);
    --detail::thread_span_depth();
#endif
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#ifndef STOCHRES_OBS_DISABLE
  SpanStats* series_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t trace_token_ = 0;
#endif
};

/// Number of spans currently open on the calling thread (0 when balanced).
int active_span_depth() noexcept;

/// Deepest nesting any thread has reached since the last reset_all().
int max_span_depth() noexcept;

/// Marks a thread-pool task boundary: zeroes the calling thread's span depth
/// for the task's duration and restores it afterwards, so a task executed
/// inline by a blocked caller (the pool's helping join) nests identically to
/// one executed by a worker. While the flight recorder is armed it also
/// brackets the task with "sim.pool.task" begin/end events, which is what
/// makes worker overlap visible on the Perfetto timeline.
class TaskScope {
 public:
  TaskScope() noexcept;
  ~TaskScope();
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
#ifndef STOCHRES_OBS_DISABLE
  int saved_depth_ = 0;
  std::uint64_t trace_token_ = 0;
#endif
};

}  // namespace sre::obs
