#include "obs/minijson.hpp"

#include <cstdlib>

namespace sre::obs::minijson {

const Value* Value::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult out;
    skip_ws();
    if (!parse_value(out.value, 0)) {
      out.error = error_;
      out.offset = pos_;
      return out;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      out.error = "trailing characters after document";
      out.offset = pos_;
      return out;
    }
    out.ok = true;
    return out;
  }

 private:
  bool fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char expected, const char* message) {
    if (peek() != expected) return fail(message);
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    switch (peek()) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind = Value::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = Value::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out, int depth) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':', "expected ':' after object key")) return false;
      skip_ws();
      Value member;
      if (!parse_value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume('}', "expected ',' or '}' in object");
    }
  }

  bool parse_array(Value& out, int depth) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      Value element;
      if (!parse_value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume(']', "expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "expected string")) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point; surrogate pairs (absent from
          // anything this repo writes) pass through as two 3-byte units.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    out.kind = Value::Kind::kNumber;
    out.number = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParseResult parse(std::string_view text) { return Parser(text).run(); }

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace sre::obs::minijson
