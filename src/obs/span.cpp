#include "obs/span.hpp"

#include <chrono>

namespace sre::obs {

namespace detail {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int& thread_span_depth() noexcept {
  thread_local int depth = 0;
  return depth;
}

void note_depth(int depth) noexcept {
  // Registered as a gauge so it shows up in report_json() and is cleared by
  // reset_all() like every other instrument.
  static Gauge& g = gauge("obs.span.max_depth");
  g.set_max(static_cast<double>(depth));
}

}  // namespace detail

int active_span_depth() noexcept { return detail::thread_span_depth(); }

int max_span_depth() noexcept {
  static Gauge& g = gauge("obs.span.max_depth");
  return static_cast<int>(g.value());
}

TaskScope::TaskScope() noexcept {
#ifndef STOCHRES_OBS_DISABLE
  saved_depth_ = detail::thread_span_depth();
  detail::thread_span_depth() = 0;
  if (recorder::armed()) {
    static const std::uint32_t label = recorder::intern_label("sim.pool.task");
    trace_token_ = recorder::emit_begin(label);
  }
#endif
}

TaskScope::~TaskScope() {
#ifndef STOCHRES_OBS_DISABLE
  if (trace_token_ != 0) recorder::emit_end(trace_token_);
  detail::thread_span_depth() = saved_depth_;
#endif
}

}  // namespace sre::obs
