#pragma once

// Flight recorder: an event-level timeline under the Span/TaskScope
// aggregates. While armed it captures begin/end/instant events (interned
// label id, small thread id, steady-clock ns) into per-thread bounded
// buffers, then serializes them as Chrome Trace Event Format JSON that loads
// directly in Perfetto / chrome://tracing.
//
// Recording is opt-in and bounded:
//  * arm with SRE_TRACE=path (arm_from_env()) or start(); disarm with
//    stop()/stop_and_write().
//  * each thread owns a fixed-capacity buffer (set_thread_capacity(),
//    default 1 << 16 events). A span reserves its end-event slot when the
//    begin event is accepted, so the serialized stream is balanced per
//    thread by construction; events that do not fit are counted in
//    dropped_events(), never torn.
//  * when disarmed the per-event cost is one relaxed atomic load and a
//    branch; under STOCHRES_OBS_DISABLE everything compiles to a no-op and
//    armed() is constant false.
//
// Concurrency contract: emit_* are lock-free on the hot path (the owning
// thread is the only writer of its buffer; the size counter is published
// with release stores). start()/stop()/serialization take a registry mutex
// and read only event slots published before the disarm, so flushing while
// stray writers finish is safe; their tail events are simply not part of
// the capture. Begin/end pairs that straddle a capture boundary are dropped
// as a pair (the begin token carries the capture epoch).
//
// Not to be confused with platform::trace, which ingests *job execution
// traces* (Fig. 1 input data); obs::recorder records the solver's own
// execution timeline.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace sre::obs::recorder {

namespace detail {
// Process-wide arming flag, mirroring obs::detail::enabled_flag(): relaxed
// accesses, a late-observed toggle only trims or extends the capture edge.
inline std::atomic<bool>& armed_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

/// True while a capture is running. Relaxed load; hot-path guard.
inline bool armed() noexcept {
#ifdef STOCHRES_OBS_DISABLE
  return false;
#else
  return detail::armed_flag().load(std::memory_order_relaxed);
#endif
}

/// Begins a new capture: bumps the capture epoch (invalidating events from
/// earlier captures), resets drop accounting, and arms the recorder.
/// Idempotent while armed (restarting an armed recorder is a no-op).
void start();

/// Arms from the environment: SRE_TRACE=path starts a capture and remembers
/// `path` for stop_and_write(). Returns true when a capture was started.
bool arm_from_env();

/// Disarms. Events already published stay available for serialization.
void stop();

/// Disarms and serializes the capture to `path` (or, when `path` is empty,
/// to the SRE_TRACE path remembered by arm_from_env()). Returns false when
/// no path is known or the file cannot be written. No-op (false) when the
/// layer is compiled out or no capture ever started.
bool stop_and_write(const std::string& path = {});

/// Serializes the most recent capture as Chrome Trace Event JSON. Safe to
/// call while armed (snapshots the published prefix of every buffer).
/// Unmatched begin events are closed with synthetic end events so the
/// output always balances per thread.
std::string trace_json();

/// Interns `name`, returning a stable label id for emit_*. Takes the
/// registry mutex; call once per site and cache the id.
std::uint32_t intern_label(std::string_view name);

/// Names the calling thread in the trace (Chrome metadata event). Also
/// eagerly registers the thread's buffer.
void set_thread_name(std::string_view name);

/// Per-thread buffer capacity (events) for threads/captures that have not
/// yet allocated a buffer in the current epoch; existing buffers resize on
/// their next epoch change. Intended for tests; clamped to >= 8.
void set_thread_capacity(std::size_t events);

/// Emits a begin event. Returns an opaque token to pass to emit_end: 0
/// means the event was not recorded (disarmed or buffer full — the span's
/// end must then be skipped, which emit_end(0, ...) does).
std::uint64_t emit_begin(std::uint32_t label) noexcept;

/// Emits the end event matching `token` at time `ts_ns` (0 = now). Safe to
/// call with token == 0 or after the capture that issued the token ended.
void emit_end(std::uint64_t token, std::uint64_t ts_ns = 0) noexcept;

/// Emits a thread-scoped instant event.
void emit_instant(std::uint32_t label) noexcept;

/// Emits a Chrome Trace *flow* event tying this point on the calling
/// thread's timeline into the cross-thread flow `flow_id` (srv:: hashes the
/// request's trace context, see COOKBOOK 21). `phase` is 's' (flow start),
/// 't' (step), or 'f' (finish; serialized with "bp":"e" so it binds to the
/// enclosing slice) — any other phase is ignored. Perfetto draws arrows
/// s -> t... -> f across threads sharing one id.
void emit_flow(std::uint32_t label, std::uint64_t flow_id,
               char phase) noexcept;

/// Events dropped (buffer full) in the current capture, across threads.
std::uint64_t dropped_events() noexcept;

/// Events accepted in the current capture, across threads (includes
/// reserved-but-not-yet-emitted end slots once their begin is accepted).
std::uint64_t recorded_events() noexcept;

}  // namespace sre::obs::recorder
