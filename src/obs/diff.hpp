#pragma once

// Metrics regression diffing — the engine behind tools/obsdiff.cpp. Two
// metrics documents (BENCH_*_metrics.json sidecars or BENCH_sweep.json) are
// flattened into dotted numeric keys and compared key-by-key against
// per-class relative tolerances:
//
//  * count-like keys (counters.*, *.count, scenarios, batches, booleans)
//    default to exact equality — these are deterministic for a fixed
//    workload, so any drift is a behavior change;
//  * time-like keys (*_ns, *_seconds, *.sum, *.max, p50/p95/p99, rates,
//    speedups) are gated only on INCREASE beyond a configurable relative
//    band — wall time shrinking is an improvement, not a regression;
//  * per-key glob overrides (--tol/--ignore in the CLI) take precedence,
//    first match wins, so intrinsically nondeterministic keys (steals,
//    idle_ns) can be widened or dropped;
//  * drop counters (*.dropped, *.drops, *_dropped, *_drops) are ignored by
//    default: they count lines shed under transient backpressure (the
//    access-log sink, lossy rings), grow monotonically with load, and are
//    expected to differ run to run. --strict-drops restores exact gating.
//
// A key present in the baseline but missing from the current run is a
// regression by default: deleted instrumentation should be an intentional,
// baseline-refreshing change. Extra keys in the current run are reported as
// notes only, so adding instrumentation never breaks CI.
//
// Like minijson, this is offline analysis code and is not compiled out
// under STOCHRES_OBS_DISABLE.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/minijson.hpp"

namespace sre::obs::diff {

/// Ignore marker for per-key tolerance overrides.
inline constexpr double kIgnore = -1.0;

struct Rule {
  std::string pattern;     ///< glob: '*' matches any run (incl. empty, '.')
  double tolerance = 0.0;  ///< relative band; kIgnore drops the key
};

struct Options {
  double time_tol = 0.5;     ///< band for time-like keys (0.5 = +50%)
  double counter_tol = 0.0;  ///< band for count-like keys (0 = exact)
  bool fail_on_missing = true;
  /// Auto-ignore is_drop_like() keys (noted, never gated). An explicit
  /// matching rule always wins over the auto-ignore.
  bool ignore_drop_counters = true;
  std::vector<Rule> rules;   ///< first matching pattern wins
};

struct Finding {
  enum class Kind { kValueRegression, kMissingKey };
  Kind kind = Kind::kValueRegression;
  std::string key;
  double baseline = 0.0;
  double current = 0.0;
  double tolerance = 0.0;
};

struct Result {
  std::vector<Finding> violations;
  std::vector<std::string> notes;  ///< improvements, extra keys, skips
  std::size_t keys_compared = 0;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Glob match where '*' matches any (possibly empty) substring; no other
/// metacharacters. "counters.sim.pool.*" matches that whole subtree.
bool glob_match(std::string_view pattern, std::string_view key) noexcept;

/// True when `key` is gated by the time band rather than the counter band.
bool is_time_like(std::string_view key) noexcept;

/// True for monotonically-growing shed/drop counters (last dotted segment
/// "dropped"/"drops", or a "_dropped"/"_drops" suffix) — e.g.
/// counters.obs.wide.dropped, wide.dropped, lines_dropped. These measure
/// transient backpressure, not workload determinism, so compare() skips
/// them when Options::ignore_drop_counters is set.
bool is_drop_like(std::string_view key) noexcept;

/// Flattens a parsed metrics document: nested object members join with '.',
/// numbers keep their value, booleans map to 0/1, strings ("inf", "nan",
/// labels) and arrays (histogram bucket vectors — covered by count/sum/
/// quantile scalars, and timing-shaped anyway) are skipped.
std::map<std::string, double> flatten(const minijson::Value& doc);

/// Compares flattened documents under `opts`. Violations are sorted by key.
Result compare(const std::map<std::string, double>& baseline,
               const std::map<std::string, double>& current,
               const Options& opts);

/// Human-readable report of `result` ("OK, 42 keys compared" or one line
/// per violation and note).
std::string describe(const Result& result);

}  // namespace sre::obs::diff
