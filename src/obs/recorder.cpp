#include "obs/recorder.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/span.hpp"

namespace sre::obs::recorder {

#ifndef STOCHRES_OBS_DISABLE

namespace {

constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;
constexpr std::size_t kMinCapacity = 8;

struct Event {
  std::uint64_t ts_ns = 0;
  std::uint64_t flow_id = 0;  ///< nonzero only for flow phases
  std::uint32_t label = 0;
  char phase = 0;  ///< 'B', 'E', 'I', or flow 's'/'t'/'f'
};

// One buffer per thread, written only by its owner. The owner publishes
// events with a release store of `size`; readers (serialization, counters)
// hold the registry mutex and read only the published prefix, so they never
// touch a slot the owner may still be writing.
struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::string name;                        ///< guarded by the registry mutex
  std::vector<Event> events;               ///< resized only in refresh()
  std::atomic<std::size_t> size{0};        ///< published event count
  std::atomic<std::size_t> reserved{0};    ///< end-slots owed to open spans
  std::atomic<std::uint64_t> dropped{0};   ///< events rejected this epoch
  std::atomic<std::uint64_t> epoch{0};     ///< capture this data belongs to
};

// Leaked singleton, same lifetime argument as the metrics registry: worker
// threads may emit during static teardown.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::vector<std::string> labels;  ///< id -> name; id 0 reserved
  std::map<std::string, std::uint32_t, std::less<>> label_ids;
  std::size_t capacity = kDefaultCapacity;
  std::atomic<std::uint64_t> epoch{0};  ///< 0 = no capture ever started
  std::string env_path;                 ///< remembered SRE_TRACE target
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

thread_local ThreadBuffer* t_buf = nullptr;

/// Registers (or re-syncs) the calling thread's buffer for `epoch`. Takes
/// the registry mutex; called once per thread per capture, not per event.
ThreadBuffer& refresh_locked(std::uint64_t epoch) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  if (t_buf == nullptr) {
    r.buffers.push_back(std::make_unique<ThreadBuffer>());
    t_buf = r.buffers.back().get();
    t_buf->tid = static_cast<std::uint32_t>(r.buffers.size());
  }
  ThreadBuffer& buf = *t_buf;
  if (buf.epoch.load(std::memory_order_relaxed) != epoch) {
    buf.events.resize(r.capacity);
    buf.size.store(0, std::memory_order_relaxed);
    buf.reserved.store(0, std::memory_order_relaxed);
    buf.dropped.store(0, std::memory_order_relaxed);
    buf.epoch.store(epoch, std::memory_order_relaxed);
  }
  return buf;
}

/// The calling thread's buffer, synced to the current capture epoch.
inline ThreadBuffer& local_buffer(std::uint64_t epoch) {
  ThreadBuffer* buf = t_buf;
  if (buf == nullptr || buf->epoch.load(std::memory_order_relaxed) != epoch) {
    return refresh_locked(epoch);
  }
  return *buf;
}

/// Appends one event if `extra_reserve + 1` slots fit beside the already
/// promised end-events; returns false (counting a drop) otherwise.
inline bool append(ThreadBuffer& buf, char phase, std::uint32_t label,
                   std::uint64_t ts_ns, std::size_t extra_reserve,
                   std::uint64_t flow_id = 0) {
  const std::size_t size = buf.size.load(std::memory_order_relaxed);
  const std::size_t reserved = buf.reserved.load(std::memory_order_relaxed);
  if (size + reserved + extra_reserve + 1 > buf.events.size()) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  buf.events[size] = Event{ts_ns, flow_id, label, phase};
  buf.reserved.store(reserved + extra_reserve, std::memory_order_relaxed);
  buf.size.store(size + 1, std::memory_order_release);
  return true;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

/// Chrome trace 'ts' is in microseconds; print with ns resolution.
std::string fmt_us(std::uint64_t ns, std::uint64_t origin_ns) {
  char out[32];
  std::snprintf(out, sizeof(out), "%.3f",
                static_cast<double>(ns - origin_ns) / 1000.0);
  return out;
}

}  // namespace

void start() {
  Registry& r = registry();
  {
    std::lock_guard lock(r.mutex);
    if (detail::armed_flag().load(std::memory_order_relaxed)) return;
    r.epoch.fetch_add(1, std::memory_order_relaxed);
  }
  detail::armed_flag().store(true, std::memory_order_relaxed);
}

bool arm_from_env() {
  const char* path = std::getenv("SRE_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  Registry& r = registry();
  {
    std::lock_guard lock(r.mutex);
    r.env_path = path;
  }
  start();
  return true;
}

void stop() { detail::armed_flag().store(false, std::memory_order_relaxed); }

bool stop_and_write(const std::string& path) {
  stop();
  std::string target = path;
  Registry& r = registry();
  if (target.empty()) {
    std::lock_guard lock(r.mutex);
    target = r.env_path;
  }
  if (target.empty()) return false;
  if (r.epoch.load(std::memory_order_relaxed) == 0) return false;
  std::ofstream out(target);
  if (!out) return false;
  out << trace_json();
  return static_cast<bool>(out);
}

std::string trace_json() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  const std::uint64_t epoch = r.epoch.load(std::memory_order_relaxed);

  // Snapshot the published prefix of every buffer belonging to this capture.
  struct Snapshot {
    const ThreadBuffer* buf;
    std::size_t n;
  };
  std::vector<Snapshot> snaps;
  std::uint64_t dropped = 0;
  std::uint64_t origin = ~std::uint64_t{0};
  for (const auto& buf : r.buffers) {
    if (buf->epoch.load(std::memory_order_relaxed) != epoch) continue;
    const std::size_t n = buf->size.load(std::memory_order_acquire);
    dropped += buf->dropped.load(std::memory_order_relaxed);
    snaps.push_back({buf.get(), n});
    if (n > 0) origin = std::min(origin, buf->events[0].ts_ns);
  }
  if (origin == ~std::uint64_t{0}) origin = 0;

  std::ostringstream os;
  os << "{\n\"displayTimeUnit\": \"ns\",\n";
  os << "\"otherData\": {\"dropped_events\": " << dropped
     << ", \"capture_epoch\": " << epoch << "},\n";
  os << "\"traceEvents\": [\n";
  bool first = true;
  const auto emit = [&](const std::string& body) {
    os << (first ? "" : ",\n") << "{" << body << "}";
    first = false;
  };
  emit("\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", "
       "\"args\": {\"name\": \"stochastic_reservations\"}");
  for (const auto& [buf, n] : snaps) {
    if (!buf->name.empty()) {
      std::ostringstream body;
      body << "\"ph\": \"M\", \"pid\": 1, \"tid\": " << buf->tid
           << ", \"name\": \"thread_name\", \"args\": {\"name\": "
           << quote(buf->name) << "}";
      emit(body.str());
    }
  }
  const auto label_name = [&](std::uint32_t id) -> std::string {
    if (id == 0 || id > r.labels.size()) return "label-" + std::to_string(id);
    return r.labels[id - 1];
  };
  for (const auto& [buf, n] : snaps) {
    // Begin events awaiting their end; unmatched ones (capture stopped with
    // the span still open, or the end-slot write missed the snapshot) are
    // closed synthetically so every 'B' balances with an 'E' per tid.
    std::vector<std::uint32_t> open;
    std::uint64_t last_ts = origin;
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = buf->events[i];
      last_ts = e.ts_ns;
      std::ostringstream body;
      if (e.phase == 'B') {
        open.push_back(e.label);
        body << "\"ph\": \"B\", \"pid\": 1, \"tid\": " << buf->tid
             << ", \"ts\": " << fmt_us(e.ts_ns, origin)
             << ", \"name\": " << quote(label_name(e.label));
      } else if (e.phase == 'E') {
        if (open.empty()) continue;  // defensive; cannot happen by design
        const std::uint32_t label = open.back();
        open.pop_back();
        body << "\"ph\": \"E\", \"pid\": 1, \"tid\": " << buf->tid
             << ", \"ts\": " << fmt_us(e.ts_ns, origin)
             << ", \"name\": " << quote(label_name(label));
      } else if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
        body << "\"ph\": \"" << e.phase << "\", \"pid\": 1, \"tid\": "
             << buf->tid << ", \"ts\": " << fmt_us(e.ts_ns, origin)
             << ", \"cat\": \"flow\", \"id\": " << e.flow_id
             << ", \"name\": " << quote(label_name(e.label));
        if (e.phase == 'f') body << ", \"bp\": \"e\"";
      } else {
        body << "\"ph\": \"I\", \"pid\": 1, \"tid\": " << buf->tid
             << ", \"ts\": " << fmt_us(e.ts_ns, origin) << ", \"s\": \"t\""
             << ", \"name\": " << quote(label_name(e.label));
      }
      emit(body.str());
    }
    while (!open.empty()) {
      const std::uint32_t label = open.back();
      open.pop_back();
      std::ostringstream body;
      body << "\"ph\": \"E\", \"pid\": 1, \"tid\": " << buf->tid
           << ", \"ts\": " << fmt_us(last_ts, origin)
           << ", \"name\": " << quote(label_name(label));
      emit(body.str());
    }
  }
  os << "\n]\n}\n";
  return os.str();
}

std::uint32_t intern_label(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  const auto it = r.label_ids.find(name);
  if (it != r.label_ids.end()) return it->second;
  r.labels.emplace_back(name);
  const auto id = static_cast<std::uint32_t>(r.labels.size());
  r.label_ids.emplace(std::string(name), id);
  return id;
}

void set_thread_name(std::string_view name) {
  Registry& r = registry();
  ThreadBuffer& buf =
      local_buffer(r.epoch.load(std::memory_order_relaxed));
  std::lock_guard lock(r.mutex);
  buf.name = std::string(name);
}

void set_thread_capacity(std::size_t events) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.capacity = std::max(events, kMinCapacity);
}

std::uint64_t emit_begin(std::uint32_t label) noexcept {
  if (!armed()) return 0;
  Registry& r = registry();
  const std::uint64_t epoch = r.epoch.load(std::memory_order_relaxed);
  ThreadBuffer& buf = local_buffer(epoch);
  if (!append(buf, 'B', label, obs::detail::now_ns(), /*extra_reserve=*/1)) {
    return 0;
  }
  return epoch;
}

void emit_end(std::uint64_t token, std::uint64_t ts_ns) noexcept {
  if (token == 0) return;
  ThreadBuffer* buf = t_buf;
  // The begin that issued the token created the buffer; a mismatched epoch
  // means the capture has turned over and the reservation is void.
  if (buf == nullptr ||
      buf->epoch.load(std::memory_order_relaxed) != token) {
    return;
  }
  buf->reserved.fetch_sub(1, std::memory_order_relaxed);
  append(*buf, 'E', 0, ts_ns != 0 ? ts_ns : obs::detail::now_ns(),
         /*extra_reserve=*/0);
}

void emit_instant(std::uint32_t label) noexcept {
  if (!armed()) return;
  Registry& r = registry();
  ThreadBuffer& buf = local_buffer(r.epoch.load(std::memory_order_relaxed));
  append(buf, 'I', label, obs::detail::now_ns(), /*extra_reserve=*/0);
}

void emit_flow(std::uint32_t label, std::uint64_t flow_id,
               char phase) noexcept {
  if (!armed()) return;
  if (phase != 's' && phase != 't' && phase != 'f') return;
  Registry& r = registry();
  ThreadBuffer& buf = local_buffer(r.epoch.load(std::memory_order_relaxed));
  append(buf, phase, label, obs::detail::now_ns(), /*extra_reserve=*/0,
         flow_id);
}

std::uint64_t dropped_events() noexcept {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  const std::uint64_t epoch = r.epoch.load(std::memory_order_relaxed);
  std::uint64_t total = 0;
  for (const auto& buf : r.buffers) {
    if (buf->epoch.load(std::memory_order_relaxed) != epoch) continue;
    total += buf->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t recorded_events() noexcept {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  const std::uint64_t epoch = r.epoch.load(std::memory_order_relaxed);
  std::uint64_t total = 0;
  for (const auto& buf : r.buffers) {
    if (buf->epoch.load(std::memory_order_relaxed) != epoch) continue;
    total += buf->size.load(std::memory_order_acquire) +
             buf->reserved.load(std::memory_order_relaxed);
  }
  return total;
}

#else  // STOCHRES_OBS_DISABLE: every entry point is a no-op that still links.

void start() {}
bool arm_from_env() { return false; }
void stop() {}
bool stop_and_write(const std::string&) { return false; }
std::string trace_json() {
  return "{\n\"displayTimeUnit\": \"ns\",\n\"otherData\": "
         "{\"dropped_events\": 0, \"capture_epoch\": 0},\n"
         "\"traceEvents\": [\n]\n}\n";
}
std::uint32_t intern_label(std::string_view) { return 0; }
void set_thread_name(std::string_view) {}
void set_thread_capacity(std::size_t) {}
std::uint64_t emit_begin(std::uint32_t) noexcept { return 0; }
void emit_end(std::uint64_t, std::uint64_t) noexcept {}
void emit_instant(std::uint32_t) noexcept {}
void emit_flow(std::uint32_t, std::uint64_t, char) noexcept {}
std::uint64_t dropped_events() noexcept { return 0; }
std::uint64_t recorded_events() noexcept { return 0; }

#endif

}  // namespace sre::obs::recorder
