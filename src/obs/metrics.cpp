#include "obs/metrics.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>

#include "obs/recorder.hpp"

namespace sre::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    assert(bounds_[i] > bounds_[i - 1] && "histogram bounds must ascend");
  }
}

void Histogram::observe(double v) noexcept {
#ifndef STOCHRES_OBS_DISABLE
  if (!enabled()) return;
  // Buckets are few (tens); a linear scan beats binary search at this size
  // and keeps the operation branch-predictable for clustered observations.
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
#else
  (void)v;
#endif
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0 || buckets.size() != bounds.size() + 1) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::fmin(std::fmax(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (cum + in_bucket >= rank) {
      const double lo = (i == 0) ? 0.0 : bounds[i - 1];
      // The overflow bucket has no upper bound; the observed max is the
      // tightest finite cap available.
      const double hi = (i < bounds.size()) ? bounds[i] : std::fmax(max, lo);
      const double frac = (rank - cum) / in_bucket;
      return lo + (hi - lo) * std::fmin(std::fmax(frac, 0.0), 1.0);
    }
    cum += in_bucket;
  }
  return max;
}

void SpanStats::record(std::uint64_t duration_ns) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(duration_ns, std::memory_order_relaxed);
  std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
  while (duration_ns > cur && !max_ns_.compare_exchange_weak(
                                  cur, duration_ns, std::memory_order_relaxed)) {
  }
}

void SpanStats::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

namespace {

// The registry leaks by design (function-local static, never destroyed):
// instruments may be touched by worker threads during process teardown, so
// handles must outlive every other static.
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::map<std::string, std::unique_ptr<SpanStats>> spans;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto& slot = r.counters[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto& slot = r.gauges[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram(std::string_view name, std::vector<double> upper_bounds) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto& slot = r.histograms[std::string(name)];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

SpanStats& span_series(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto& slot = r.spans[std::string(name)];
  if (!slot) {
    slot = std::make_unique<SpanStats>();
    // Pre-intern the flight-recorder label so Span's hot path never takes
    // the recorder's registration mutex. (No-op, id 0, when compiled out.)
    slot->set_trace_label(recorder::intern_label(name));
  }
  return *slot;
}

std::vector<double> duration_bounds_seconds() {
  // 1us .. 100s in decade steps of 1-3-10, the usual latency ladder.
  return {1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
          1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,  10.0, 100.0};
}

std::map<std::string, std::uint64_t> counters_snapshot() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : r.counters) out[name] = c->value();
  return out;
}

std::map<std::string, double> gauges_snapshot() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::map<std::string, double> out;
  for (const auto& [name, g] : r.gauges) out[name] = g->value();
  return out;
}

std::map<std::string, HistogramSnapshot> histograms_snapshot() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : r.histograms) {
    HistogramSnapshot snap;
    snap.bounds = h->bounds();
    snap.buckets.reserve(snap.bounds.size() + 1);
    for (std::size_t i = 0; i <= snap.bounds.size(); ++i) {
      snap.buckets.push_back(h->bucket_count(i));
    }
    snap.count = h->count();
    snap.sum = h->sum();
    snap.max = h->max();
    out[name] = std::move(snap);
  }
  return out;
}

std::map<std::string, SpanSnapshot> spans_snapshot() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::map<std::string, SpanSnapshot> out;
  for (const auto& [name, s] : r.spans) {
    out[name] = SpanSnapshot{s->count(), s->total_ns(), s->max_ns()};
  }
  return out;
}

void reset_all() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, h] : r.histograms) h->reset();
  for (auto& [name, s] : r.spans) s->reset();
}

}  // namespace sre::obs
