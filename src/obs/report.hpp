#pragma once

// Stable JSON snapshot of the metrics registry. Keys are emitted in sorted
// order and numbers in a fixed format, so two snapshots of identical
// registry state are byte-identical (tests/test_obs.cpp enforces this).

#include <string>

namespace sre::obs {

/// Shortest round-trippable decimal form of a double for JSON emission;
/// integral values print bare ("6", not "6.0"), non-finite values as quoted
/// strings ("inf", "-inf", "nan" — JSON has no literals for them). Shared by
/// every hand-rolled emitter so numeric formatting stays byte-stable.
std::string format_double(double v);

/// Serializes every registered counter, gauge, histogram, and span aggregate:
///   {"counters": {...}, "gauges": {...}, "histograms": {...}, "spans": {...}}
/// Instruments registered but never hit are included with zero values.
std::string report_json();

/// Writes report_json() to `path`. Returns false on I/O failure.
bool write_json(const std::string& path);

}  // namespace sre::obs
