#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sre::obs::diff {

bool glob_match(std::string_view pattern, std::string_view key) noexcept {
  // Iterative star-backtracking: only '*' is special, so the classic
  // two-pointer scan suffices (no character classes, no '?').
  std::size_t p = 0, k = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (k < key.size()) {
    if (p < pattern.size() && (pattern[p] == key[k])) {
      ++p;
      ++k;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = k;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      k = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool is_time_like(std::string_view key) noexcept {
  const auto ends_with = [key](std::string_view suffix) {
    return key.size() >= suffix.size() &&
           key.substr(key.size() - suffix.size()) == suffix;
  };
  const auto contains = [key](std::string_view needle) {
    return key.find(needle) != std::string_view::npos;
  };
  // ".count" and counters are count-like even under "histograms."; check
  // the exact-count suffixes first.
  if (ends_with(".count")) return false;
  return ends_with("_ns") || ends_with("_seconds") || ends_with(".sum") ||
         ends_with(".max") || ends_with(".p50") || ends_with(".p95") ||
         ends_with(".p99") || contains("seconds") || contains("per_sec") ||
         contains("speedup") || contains("rate") || contains("gauges.");
}

bool is_drop_like(std::string_view key) noexcept {
  const auto ends_with = [key](std::string_view suffix) {
    return key.size() >= suffix.size() &&
           key.substr(key.size() - suffix.size()) == suffix;
  };
  if (ends_with("_dropped") || ends_with("_drops")) return true;
  const std::size_t dot = key.rfind('.');
  const std::string_view last =
      dot == std::string_view::npos ? key : key.substr(dot + 1);
  return last == "dropped" || last == "drops";
}

namespace {

void flatten_into(const minijson::Value& value, const std::string& prefix,
                  std::map<std::string, double>& out) {
  switch (value.kind) {
    case minijson::Value::Kind::kNumber:
      out[prefix] = value.number;
      break;
    case minijson::Value::Kind::kBool:
      out[prefix] = value.boolean ? 1.0 : 0.0;
      break;
    case minijson::Value::Kind::kObject:
      for (const auto& [name, member] : value.object) {
        flatten_into(member, prefix.empty() ? name : prefix + "." + name, out);
      }
      break;
    default:
      break;  // strings, arrays, null: not comparable scalars
  }
}

std::string fmt_value(double v) {
  char out[32];
  std::snprintf(out, sizeof(out), "%.6g", v);
  return out;
}

}  // namespace

std::map<std::string, double> flatten(const minijson::Value& doc) {
  std::map<std::string, double> out;
  flatten_into(doc, "", out);
  return out;
}

Result compare(const std::map<std::string, double>& baseline,
               const std::map<std::string, double>& current,
               const Options& opts) {
  Result result;
  for (const auto& [key, base] : baseline) {
    double tol = 0.0;
    bool has_rule = false;
    for (const Rule& rule : opts.rules) {
      if (glob_match(rule.pattern, key)) {
        tol = rule.tolerance;
        has_rule = true;
        break;
      }
    }
    const bool time_like = is_time_like(key);
    if (!has_rule) {
      if (opts.ignore_drop_counters && is_drop_like(key)) {
        result.notes.push_back("ignored (drop counter): " + key);
        continue;
      }
      tol = time_like ? opts.time_tol : opts.counter_tol;
    }
    if (tol < 0.0) {
      result.notes.push_back("ignored: " + key);
      continue;
    }

    const auto it = current.find(key);
    if (it == current.end()) {
      if (opts.fail_on_missing) {
        result.violations.push_back(
            {Finding::Kind::kMissingKey, key, base, 0.0, tol});
      } else {
        result.notes.push_back("missing (allowed): " + key);
      }
      continue;
    }
    ++result.keys_compared;
    const double cur = it->second;
    if (!std::isfinite(base) || !std::isfinite(cur)) {
      if (base != cur && !(std::isnan(base) && std::isnan(cur))) {
        result.violations.push_back(
            {Finding::Kind::kValueRegression, key, base, cur, tol});
      }
      continue;
    }
    const double band = tol * std::max(std::fabs(base), 1e-12);
    if (time_like) {
      // Gate increases only; a shrink beyond the band is worth a note.
      if (cur - base > band) {
        result.violations.push_back(
            {Finding::Kind::kValueRegression, key, base, cur, tol});
      } else if (base - cur > band) {
        result.notes.push_back("improved: " + key + " " + fmt_value(base) +
                               " -> " + fmt_value(cur));
      }
    } else if (std::fabs(cur - base) > band) {
      result.violations.push_back(
          {Finding::Kind::kValueRegression, key, base, cur, tol});
    }
  }
  for (const auto& [key, value] : current) {
    if (baseline.find(key) == baseline.end()) {
      result.notes.push_back("new key: " + key + " = " + fmt_value(value));
    }
  }
  std::sort(result.violations.begin(), result.violations.end(),
            [](const Finding& a, const Finding& b) { return a.key < b.key; });
  return result;
}

std::string describe(const Result& result) {
  std::ostringstream os;
  for (const Finding& f : result.violations) {
    if (f.kind == Finding::Kind::kMissingKey) {
      os << "MISSING    " << f.key << " (baseline " << fmt_value(f.baseline)
         << ", absent in current)\n";
    } else {
      os << "REGRESSION " << f.key << " baseline " << fmt_value(f.baseline)
         << " current " << fmt_value(f.current) << " (tolerance "
         << fmt_value(f.tolerance * 100.0) << "%)\n";
    }
  }
  for (const std::string& note : result.notes) os << "note: " << note << "\n";
  if (result.ok()) {
    os << "OK: " << result.keys_compared << " keys within tolerance\n";
  } else {
    os << "FAIL: " << result.violations.size() << " violation(s) across "
       << result.keys_compared << " compared keys\n";
  }
  return os.str();
}

}  // namespace sre::obs::diff
