#pragma once

// Process-wide metrics registry: monotonic counters, gauges, and fixed-bucket
// histograms, owned by a singleton and addressed by dotted names
// ("sim.pool.steals"). Handles are stable references — look one up once per
// call site and cache it in a function-local static:
//
//   static obs::Counter& hits = obs::counter("dist.cdf_cache.hits");
//   hits.add();
//
// Mutation is a relaxed atomic op guarded by the obs::enabled() switch, so
// instruments are safe to leave in hot paths; with STOCHRES_OBS_DISABLE they
// compile to nothing. Registration (the name lookup) takes a mutex and is
// expected once per call site, not per event.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace sre::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
#ifndef STOCHRES_OBS_DISABLE
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (thread counts, rates, config).
class Gauge {
 public:
  void set(double v) noexcept {
#ifndef STOCHRES_OBS_DISABLE
    if (enabled()) value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  /// Raises the gauge to `v` if larger (atomic max).
  void set_max(double v) noexcept {
#ifndef STOCHRES_OBS_DISABLE
    if (!enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Bounds are fixed at first
/// registration. Also tracks count / sum / max of the raw observations.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  void reset() noexcept;

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Per-label aggregate fed by obs::Span: call count, total and max wall time.
class SpanStats {
 public:
  void record(std::uint64_t duration_ns) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_ns() const noexcept {
    return max_ns_.load(std::memory_order_relaxed);
  }

  /// Flight-recorder label id for this series (the registry interns the
  /// series name at registration); 0 when the recorder is compiled out.
  [[nodiscard]] std::uint32_t trace_label() const noexcept {
    return trace_label_;
  }
  void set_trace_label(std::uint32_t id) noexcept { trace_label_ = id; }

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
  std::uint32_t trace_label_ = 0;  ///< written once, under the registry mutex
};

/// Registry handle lookups. References stay valid for the process lifetime;
/// repeated lookups of one name return the same instrument.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
/// `upper_bounds` must be ascending; consulted only on first registration.
Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);
SpanStats& span_series(std::string_view name);

/// Geometric seconds-scale bounds (1us .. ~100s) for wall-time histograms.
std::vector<double> duration_bounds_seconds();

/// Read-only snapshots for reporting (sorted by name).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1, overflow last
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation within the
  /// bucket where the cumulative count crosses q * count. The first bucket
  /// interpolates from 0, the overflow bucket toward the observed max.
  /// NaN when the histogram is empty.
  [[nodiscard]] double quantile(double q) const noexcept;
};
struct SpanSnapshot {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

std::map<std::string, std::uint64_t> counters_snapshot();
std::map<std::string, double> gauges_snapshot();
std::map<std::string, HistogramSnapshot> histograms_snapshot();
std::map<std::string, SpanSnapshot> spans_snapshot();

/// Zeroes every registered instrument (names stay registered).
void reset_all();

}  // namespace sre::obs
