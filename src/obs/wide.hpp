#pragma once

// obs::wide — per-request "wide events" and live-introspection plumbing for
// the serving stack (COOKBOOK recipe 21):
//
//   * a clock seam (`set_clock` / `now_ns`) so request-lifecycle stamps are
//     monotonic in production and injectable in tests — every timeline test
//     runs against a deterministic counter clock, never sleeps;
//   * `Event` + `format_event`: one NDJSON line per served request with the
//     full accepted→framed→admitted→batched→solved→slotted→flushed timeline
//     and the derived queue/solve/write components. The field order is fixed
//     and byte-stable (tests/test_obs_wide.cpp pins the exact bytes) — the
//     schema is a contract, see CONTRIBUTING "Extending the wide-event
//     schema";
//   * `Sink`: a bounded, non-blocking access-log writer. The event loop
//     thread only ever appends to an in-memory queue (`try_write`); a
//     flusher thread owns the file. A full queue drops the event and counts
//     it (`dropped()`, obs counter `obs.wide.dropped`) — the log never
//     backpressures the serving path. Under STOCHRES_OBS_DISABLE `open()`
//     returns nullptr and the whole writer compiles to stubs: the access
//     log does not exist in obs-off builds;
//   * `SnapshotRing`: a small ring of periodic counter snapshots backing the
//     rate-over-window figures in the `{"stats":true}` verb. Plain data —
//     like the `srv` counters it samples, it is exact in every build and is
//     NOT compiled out;
//   * `prometheus_text()`: the metrics registry rendered in Prometheus text
//     exposition format for `sre_serve --prom`.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sre::obs::wide {

// -- clock seam --------------------------------------------------------------

/// Returns nanoseconds on a monotonic scale. Defaults to
/// std::chrono::steady_clock; tests substitute an atomic counter so the
/// recorded timelines are deterministic.
std::uint64_t now_ns() noexcept;

using ClockFn = std::uint64_t (*)();

/// Installs `fn` as the clock behind now_ns(); nullptr restores the default
/// steady clock. Takes effect process-wide (it is a test seam, not a
/// per-server knob).
void set_clock(ClockFn fn) noexcept;

// -- the wide event ----------------------------------------------------------

/// Everything known about one request by the time its response bytes hit the
/// socket. Timestamps come from now_ns(); a stage that never happened for
/// this request (e.g. batched for a cache hit) carries the stamp of the
/// stage that subsumed it, so the derived components are zero, not garbage.
struct Event {
  std::string id;     ///< request id as echoed on the wire
  std::string peer;   ///< client "ip:port"
  std::string trace;  ///< optional trace context, empty when absent
  std::uint64_t conn = 0;
  bool ok = false;
  bool cached = false;
  std::string code;  ///< error_code_name() when !ok, ignored otherwise
  double retry_after_ms = 0.0;  ///< brownout backoff hint; 0 = none
  std::uint32_t batch = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t accepted_ns = 0;  ///< request bytes arrived at the loop
  std::uint64_t framed_ns = 0;    ///< framer produced the complete line
  std::uint64_t admitted_ns = 0;  ///< service accepted (or rejected) it
  std::uint64_t batched_ns = 0;   ///< a worker dequeued its batch
  std::uint64_t solved_ns = 0;    ///< the solve (or inline outcome) finished
  std::uint64_t slotted_ns = 0;   ///< completion landed in its response slot
  std::uint64_t flushed_ns = 0;   ///< last response byte written to the fd
};

/// One NDJSON object (no trailing newline), fixed field order:
/// ts,id,conn,peer[,trace],ok[,code][,retry_after_ms],cached,batch,
/// bytes_in,bytes_out,queue_ns,solve_ns,write_ns,total_ns, then the seven
/// raw stamps. Optional fields only appear when set, so events without
/// them keep their exact historical bytes.
/// Derived components saturate at 0: queue = batched-admitted,
/// solve = solved-batched, write = flushed-slotted, total = flushed-accepted.
std::string format_event(const Event& event);

// -- the bounded access-log sink ---------------------------------------------

struct SinkConfig {
  std::string path;
  std::size_t capacity = 16384;  ///< queued-line bound before drops
};

class Sink {
 public:
  /// Opens the access log for writing (truncating) and starts the flusher
  /// thread. Returns nullptr when `path` is empty or under
  /// STOCHRES_OBS_DISABLE; throws std::runtime_error when the file cannot
  /// be created.
  static std::unique_ptr<Sink> open(const SinkConfig& config);

  ~Sink();  ///< drains the queue, joins the flusher, closes the file
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  /// Queues one NDJSON line (newline appended by the writer). Never blocks:
  /// returns false and counts a drop when the queue is at capacity.
  bool try_write(std::string line);

  /// Test seam: a paused flusher stops draining (simulating a stalled disk)
  /// so try_write fills the queue and the drop accounting is observable.
  /// Destruction drains regardless of pause.
  void set_paused(bool paused);

  [[nodiscard]] std::uint64_t accepted() const noexcept;
  [[nodiscard]] std::uint64_t written() const noexcept;
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  struct Impl;

 private:
  explicit Sink(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

// -- rate-over-window snapshots ----------------------------------------------

/// One periodic sample of the loop's monotone counters.
struct Snapshot {
  std::uint64_t t_ns = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

/// Fixed-capacity ring of Snapshots; push overwrites the oldest once full.
/// oldest()/newest() give the widest window currently held — the stats verb
/// reports (newest - oldest) / dt as the rate.
class SnapshotRing {
 public:
  explicit SnapshotRing(std::size_t capacity = 16);

  void push(const Snapshot& snapshot);
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const Snapshot& oldest() const;
  [[nodiscard]] const Snapshot& newest() const;

 private:
  std::vector<Snapshot> ring_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
};

// -- Prometheus text exposition ----------------------------------------------

/// The metrics registry (counters, gauges, histogram summaries, span
/// aggregates) in Prometheus text format. Names are the dotted instrument
/// names with dots mapped to underscores under an `sre_` prefix; histograms
/// render as summaries (quantile labels + _sum/_count). Deterministic for a
/// fixed registry state (sorted snapshots). Empty registry (or obs-off)
/// renders only the header comment.
std::string prometheus_text();

}  // namespace sre::obs::wide
