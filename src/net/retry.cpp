#include "net/retry.hpp"

#include <algorithm>

#include "sim/rng.hpp"

namespace sre::net {

double RetryPolicy::jitter_draw(std::uint64_t seed, std::uint64_t stream,
                                std::uint64_t attempt) noexcept {
  std::uint64_t state =
      sim::substream_seed(sim::substream_seed(seed, stream), attempt);
  return static_cast<double>(sim::splitmix64(state) >> 11) * 0x1.0p-53;
}

RetrySchedule::RetrySchedule(const RetryPolicy& policy,
                             std::uint64_t stream) noexcept
    : policy_(policy), stream_(stream), prev_sleep_(policy.base_seconds) {}

double RetrySchedule::next(double server_hint_seconds) noexcept {
  ++attempt_;
  double sleep = 0.0;
  if (policy_.base_seconds > 0.0) {
    const double u = RetryPolicy::jitter_draw(
        policy_.seed, stream_, static_cast<std::uint64_t>(attempt_));
    const double hi = std::max(policy_.base_seconds, 3.0 * prev_sleep_);
    sleep = policy_.base_seconds + u * (hi - policy_.base_seconds);
    if (policy_.cap_seconds > 0.0) {
      sleep = std::min(sleep, policy_.cap_seconds);
    }
    prev_sleep_ = sleep;
  }
  // The hint floors the jittered sleep but never feeds the recurrence:
  // sleep_{k+1} decorrelates from the client's own sleep_k, not from the
  // server's drain estimate.
  if (server_hint_seconds > 0.0) sleep = std::max(sleep, server_hint_seconds);
  return sleep;
}

}  // namespace sre::net
