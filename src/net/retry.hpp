#pragma once

// sre::net::RetryPolicy — the repo's one decorrelated-jitter backoff.
//
// Extracted verbatim from sim/sweep.cpp's retry loop so that the sweep
// engine and srv::Client share a single schedule generator: at a fixed
// (seed, stream) the sequence of sleeps is bit-identical to what the sweep
// produced before the extraction (tests/test_net_retry.cpp pins this
// against an independent reimplementation of the original formula).
//
// The jitter draw is a pure function of (seed, stream, attempt) —
// splitmix64 over nested substream seeds, the same derivation sim::fault
// uses — so retry schedules replay identically in any interleaving. The
// recurrence is AWS-style decorrelated jitter:
//
//   sleep_k = min(cap, base + u_k * (max(base, 3 * sleep_{k-1}) - base)),
//   sleep_0 = base (the seed value, never slept)
//
// RetrySchedule adds the one piece of state (the previous sleep) plus the
// server-hint contract: a kOverloaded response may carry retry_after_ms,
// which *floors* the next computed sleep — the hint can exceed the cap,
// because the server knows its own drain rate better than the client's
// static policy does (CONTRIBUTING.md "Retry-after contract").
//
// This header lives in src/net/ but compiles into the sre_sim archive:
// the jitter primitives (sim/rng.cpp) are below it and sim/sweep.cpp
// consumes it, so a separate library between stats and sim would be
// circular. srv::Client links it through the normal layer chain.

#include <cstdint>

namespace sre::net {

/// Immutable backoff parameters. `base_seconds == 0` disables sleeping
/// (retries are immediate); `cap_seconds <= 0` means uncapped.
struct RetryPolicy {
  int max_attempts = 1;        ///< total attempts (1 = no retry)
  double base_seconds = 0.0;   ///< first sleep, and the jitter floor
  double cap_seconds = 1.0;    ///< ceiling on any computed sleep
  std::uint64_t seed = 0;      ///< master seed for the jitter stream

  /// Deterministic uniform in [0, 1): pure in (seed, stream, attempt).
  [[nodiscard]] static double jitter_draw(std::uint64_t seed,
                                          std::uint64_t stream,
                                          std::uint64_t attempt) noexcept;
};

/// One stream's stateful schedule. `next()` yields the sleep preceding
/// retry attempt k (k = 1, 2, ...), advancing the decorrelated recurrence
/// exactly as the sweep's inline loop did.
class RetrySchedule {
 public:
  RetrySchedule(const RetryPolicy& policy, std::uint64_t stream) noexcept;

  /// Sleep (seconds) before the next retry. `server_hint_seconds > 0`
  /// (a retry_after_ms hint) floors the result after the cap is applied;
  /// the hint does not perturb the jitter state, so a hinted schedule's
  /// later sleeps still replay the unhinted recurrence.
  [[nodiscard]] double next(double server_hint_seconds = 0.0) noexcept;

  /// Retry attempts generated so far (== times next() was called).
  [[nodiscard]] int attempts() const noexcept { return attempt_; }

 private:
  RetryPolicy policy_;
  std::uint64_t stream_ = 0;
  double prev_sleep_ = 0.0;
  int attempt_ = 0;
};

}  // namespace sre::net
