#include "stats/canonical.hpp"

#include <cmath>

#include "obs/report.hpp"
#include "stats/error.hpp"

namespace sre::stats {

std::string canonical_key_double(double v, const char* field) {
  if (!std::isfinite(v)) {
    throw ScenarioError(ErrorCode::kDomainError,
                        std::string("non-finite value for key field '") +
                            (field != nullptr ? field : "?") + "'");
  }
  if (v == 0.0) v = 0.0;  // collapses -0.0: both print as "0"
  return obs::format_double(v);
}

}  // namespace sre::stats
