#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace sre::stats {

double OnlineMoments::variance() const noexcept {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineMoments::sample_variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineMoments::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineMoments::standard_error() const noexcept {
  if (n_ < 2) return 0.0;
  return std::sqrt(sample_variance() / static_cast<double>(n_));
}

void OnlineMoments::merge(const OnlineMoments& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double empirical_quantile(std::span<const double> sorted_samples, double p) {
  const std::size_t n = sorted_samples.size();
  if (n == 0) return 0.0;
  if (n == 1) return sorted_samples[0];
  p = std::clamp(p, 0.0, 1.0);
  const double h = p * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= n) return sorted_samples[n - 1];
  const double frac = h - static_cast<double>(lo);
  return sorted_samples[lo] + frac * (sorted_samples[lo + 1] - sorted_samples[lo]);
}

std::vector<double> empirical_quantiles(std::vector<double> samples,
                                        std::span<const double> probabilities) {
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(probabilities.size());
  for (const double p : probabilities) {
    out.push_back(empirical_quantile(samples, p));
  }
  return out;
}

}  // namespace sre::stats
