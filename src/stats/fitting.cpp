#include "stats/fitting.hpp"

#include <cassert>
#include <cmath>

#include "stats/summary.hpp"

namespace sre::stats {

AffineFit fit_affine(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size() && !x.empty());
  std::vector<double> w(x.size(), 1.0);
  return fit_affine_weighted(x, y, w);
}

AffineFit fit_affine_weighted(std::span<const double> x,
                              std::span<const double> y,
                              std::span<const double> weights) {
  assert(x.size() == y.size() && x.size() == weights.size() && !x.empty());
  KahanSum sw, swx, swy, swxx, swxy;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double w = weights[i];
    sw.add(w);
    swx.add(w * x[i]);
    swy.add(w * y[i]);
    swxx.add(w * x[i] * x[i]);
    swxy.add(w * x[i] * y[i]);
  }
  const double W = sw.value();
  const double mx = swx.value() / W;
  const double my = swy.value() / W;
  const double cov = swxy.value() / W - mx * my;
  const double var_x = swxx.value() / W - mx * mx;

  AffineFit fit;
  if (var_x <= 0.0) {
    // Degenerate: all abscissae identical; fall back to a flat line.
    fit.slope = 0.0;
    fit.intercept = my;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = cov / var_x;
  fit.intercept = my - fit.slope * mx;

  KahanSum ss_res, ss_tot;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.slope * x[i] + fit.intercept;
    ss_res.add(weights[i] * (y[i] - pred) * (y[i] - pred));
    ss_tot.add(weights[i] * (y[i] - my) * (y[i] - my));
  }
  fit.r_squared = (ss_tot.value() > 0.0) ? 1.0 - ss_res.value() / ss_tot.value()
                                         : 1.0;
  return fit;
}

LogNormalParams fit_lognormal_mle(std::span<const double> samples) {
  assert(!samples.empty());
  OnlineMoments logs;
  for (const double s : samples) {
    assert(s > 0.0);
    logs.add(std::log(s));
  }
  return LogNormalParams{logs.mean(), logs.stddev()};
}

LogNormalParams lognormal_from_moments(double mean, double stddev) {
  assert(mean > 0.0 && stddev > 0.0);
  const double ratio = stddev / mean;
  const double sigma2 = std::log1p(ratio * ratio);
  return LogNormalParams{std::log(mean) - 0.5 * sigma2, std::sqrt(sigma2)};
}

double lognormal_mean(const LogNormalParams& p) {
  return std::exp(p.mu + 0.5 * p.sigma * p.sigma);
}

double lognormal_stddev(const LogNormalParams& p) {
  const double s2 = p.sigma * p.sigma;
  return std::sqrt((std::exp(s2) - 1.0) * std::exp(2.0 * p.mu + s2));
}

}  // namespace sre::stats
