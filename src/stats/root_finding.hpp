#pragma once

// Bracketed 1-D root finding and minimization used throughout the library:
// quantile inversion for distributions without closed-form quantiles,
// the brute-force refinement of the first reservation t1, and the search for
// the Exp(1) constant s1 (Section 3.5).

#include <functional>
#include <optional>

namespace sre::stats {

/// Result of a root search.
struct RootResult {
  double x = 0.0;        ///< abscissa of the root
  double fx = 0.0;       ///< residual f(x)
  int iterations = 0;    ///< iterations consumed
  bool converged = false;
};

/// Options shared by the solvers.
struct SolveOptions {
  double x_tol = 1e-12;   ///< absolute tolerance on x
  double f_tol = 0.0;     ///< early-exit tolerance on |f(x)| (0 = off)
  int max_iterations = 200;
};

/// Brent's method on [lo, hi]; requires f(lo) and f(hi) of opposite sign
/// (or one of them zero). Returns nullopt if the bracket is invalid.
std::optional<RootResult> brent(const std::function<double(double)>& f,
                                double lo, double hi,
                                const SolveOptions& opts = {});

/// Plain bisection; same contract as brent(). Used as a robust fallback.
std::optional<RootResult> bisect(const std::function<double(double)>& f,
                                 double lo, double hi,
                                 const SolveOptions& opts = {});

/// Expands [lo, lo+step] geometrically upward until f changes sign.
/// Returns the bracketing interval or nullopt after max_iterations doublings.
std::optional<std::pair<double, double>> bracket_upward(
    const std::function<double(double)>& f, double lo, double step,
    int max_iterations = 200);

/// Unwraps a root-search result for call sites where failure is a bug, not
/// an expected outcome: throws ScenarioError(kNoConvergence) naming
/// `context` when the bracket was invalid or the iteration budget ran out.
/// Call sites that can recover (brute-force scans that skip a bad t1)
/// should keep testing the optional instead.
RootResult require_converged(const std::optional<RootResult>& root,
                             const char* context);

/// Result of a scalar minimization.
struct MinimizeResult {
  double x = 0.0;
  double fx = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Golden-section search for the minimum of a unimodal f on [lo, hi].
MinimizeResult golden_minimize(const std::function<double(double)>& f,
                               double lo, double hi, double x_tol = 1e-10,
                               int max_iterations = 200);

/// Grid scan followed by golden-section refinement around the best cell.
/// Robust for the possibly multi-modal objectives met in the t1 search
/// (Figure 3 shows gaps and plateaus). `grid_points` >= 3.
MinimizeResult grid_then_golden(const std::function<double(double)>& f,
                                double lo, double hi, int grid_points,
                                double x_tol = 1e-10);

}  // namespace sre::stats
