#pragma once

// Model fitting used by the platform substrate:
//  * affine least squares -- reproduces the waiting-time fit of Fig. 2
//    (wait = alpha * requested + gamma);
//  * LogNormal maximum likelihood -- reproduces the trace fit of Fig. 1;
//  * moment matching for LogNormal -- the Fig. 4 parameter sweeps
//    re-instantiate the law from a desired mean and standard deviation.

#include <span>

namespace sre::stats {

/// y = slope * x + intercept fitted by (optionally weighted) least squares.
struct AffineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination
};

/// Ordinary least squares; x and y must have equal, nonzero length.
AffineFit fit_affine(std::span<const double> x, std::span<const double> y);

/// Weighted least squares (weights >= 0, same length as x/y). Matches the
/// paper's per-group fit where each point is a group mean of many jobs.
AffineFit fit_affine_weighted(std::span<const double> x,
                              std::span<const double> y,
                              std::span<const double> weights);

/// Parameters of a LogNormal(mu, sigma^2) law.
struct LogNormalParams {
  double mu = 0.0;
  double sigma = 1.0;
};

/// Maximum-likelihood fit: mu/sigma are the mean/stddev of log-samples.
/// Samples must be strictly positive.
LogNormalParams fit_lognormal_mle(std::span<const double> samples);

/// Instantiate LogNormal parameters from a desired mean and standard
/// deviation (footnote 4 of the paper; the paper's printed formula for mu is
/// a typo -- the correct identity implemented here is
///   sigma^2 = ln(1 + (sd/mean)^2),  mu = ln(mean) - sigma^2 / 2,
/// verified by round-trip tests).
LogNormalParams lognormal_from_moments(double mean, double stddev);

/// The mean of LogNormal(mu, sigma^2): exp(mu + sigma^2/2).
double lognormal_mean(const LogNormalParams& p);

/// The standard deviation of LogNormal(mu, sigma^2).
double lognormal_stddev(const LogNormalParams& p);

}  // namespace sre::stats
