#pragma once

// Special mathematical functions needed by the probability distributions of
// Table 5 / Appendix A of the paper: inverse error function, normal quantile,
// regularized incomplete gamma (and its inverse), and regularized incomplete
// beta (and its inverse).
//
// All functions operate on double precision and are accurate to ~1e-12
// relative error over the parameter ranges exercised by the paper's
// distribution instantiations. Out-of-domain arguments return NaN rather than
// throwing, so callers in hot numeric loops can branch cheaply.

namespace sre::stats {

/// Standard normal CDF Phi(x).
double norm_cdf(double x) noexcept;

/// Standard normal quantile Phi^{-1}(p) for p in (0,1); NaN outside.
/// Acklam's rational approximation refined by one Halley step.
double norm_quantile(double p) noexcept;

/// Inverse error function: erf_inv(erf(x)) == x, domain (-1,1); NaN outside.
double erf_inv(double x) noexcept;

/// Inverse complementary error function, domain (0,2); NaN outside.
double erfc_inv(double x) noexcept;

/// Regularized lower incomplete gamma P(a,x) = gamma(a,x)/Gamma(a),
/// a > 0, x >= 0.
double gamma_p(double a, double x) noexcept;

/// Regularized upper incomplete gamma Q(a,x) = Gamma(a,x)/Gamma(a).
double gamma_q(double a, double x) noexcept;

/// Non-regularized upper incomplete gamma Gamma(a,x) (Appendix A notation
/// "Gamma(x,y)"). Computed as Q(a,x) * Gamma(a).
double upper_inc_gamma(double a, double x) noexcept;

/// Inverse of the regularized lower incomplete gamma: returns x such that
/// P(a,x) == p, for p in [0,1).
double gamma_p_inv(double a, double p) noexcept;

/// log|Gamma(x)|, safe to call concurrently. std::lgamma writes the global
/// `signgam` on glibc, which is a data race under threaded sweeps; every
/// call site in this codebase must go through this wrapper instead.
double log_gamma(double x) noexcept;

/// log of the complete beta function B(a,b).
double lbeta(double a, double b) noexcept;

/// Complete beta function B(a,b).
double beta_fn(double a, double b) noexcept;

/// Regularized incomplete beta I_x(a,b), x in [0,1].
double inc_beta(double x, double a, double b) noexcept;

/// Non-regularized incomplete beta B(x; a, b) = I_x(a,b) * B(a,b)
/// (Appendix A notation).
double inc_beta_unreg(double x, double a, double b) noexcept;

/// Inverse of the regularized incomplete beta: x such that I_x(a,b) == p.
double inc_beta_inv(double p, double a, double b) noexcept;

}  // namespace sre::stats
