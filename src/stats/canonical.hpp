#pragma once

// Canonical numeric formatting for cache keys. The srv:: plan cache keys a
// query by a byte-stable serialization of (distribution params, cost model,
// solver knobs); two numerically equal queries must produce the same bytes
// or the cache silently double-solves, and a NaN must never become a key at
// all (NaN != NaN, so a poisoned key can neither be hit nor evicted by
// value). This helper is the single funnel every to_key() implementation
// goes through:
//
//  * -0.0 is normalized to 0.0 (they compare equal but print differently);
//  * NaN and +/-infinity throw ScenarioError(kDomainError) naming the
//    offending field;
//  * finite values render via obs::format_double, the repo-wide shortest
//    round-trip form, so a key is stable across platforms and re-parses to
//    the exact same double.

#include <string>

namespace sre::stats {

/// Canonical key fragment for one double. `field` names the parameter in
/// the kDomainError message ("cost.alpha", "weibull.lambda", ...).
[[nodiscard]] std::string canonical_key_double(double v, const char* field);

}  // namespace sre::stats
