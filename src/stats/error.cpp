#include "stats/error.hpp"

namespace sre {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kDomainError:
      return "domain_error";
    case ErrorCode::kNoConvergence:
      return "no_convergence";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kInjectedFault:
      return "injected_fault";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kTransport:
      return "transport";
  }
  return "domain_error";  // unreachable; keeps -Wreturn-type quiet
}

bool is_retryable(ErrorCode code) noexcept {
  return code == ErrorCode::kInjectedFault || code == ErrorCode::kOverloaded ||
         code == ErrorCode::kTransport;
}

}  // namespace sre
