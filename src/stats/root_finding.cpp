#include "stats/root_finding.hpp"

#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "stats/error.hpp"

namespace sre::stats {

namespace {
bool opposite_signs(double a, double b) noexcept {
  return (a <= 0.0 && b >= 0.0) || (a >= 0.0 && b <= 0.0);
}

obs::Counter& golden_iter_counter() {
  static obs::Counter& c = obs::counter("stats.minimize.golden_iters");
  return c;
}
}  // namespace

std::optional<RootResult> brent(const std::function<double(double)>& f,
                                double lo, double hi, const SolveOptions& opts) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (!opposite_signs(fa, fb)) return std::nullopt;
  if (fa == 0.0) return RootResult{a, 0.0, 0, true};
  if (fb == 0.0) return RootResult{b, 0.0, 0, true};

  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 =
        2.0 * std::numeric_limits<double>::epsilon() * std::fabs(b) +
        0.5 * opts.x_tol;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0 ||
        (opts.f_tol > 0.0 && std::fabs(fb) <= opts.f_tol)) {
      static obs::Counter& iters = obs::counter("stats.root.brent_iters");
      iters.add(static_cast<std::uint64_t>(iter));
      return RootResult{b, fb, iter, true};
    }
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      // Inverse quadratic interpolation / secant step.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      const double min1 = 3.0 * xm * q - std::fabs(tol1 * q);
      const double min2 = std::fabs(e * q);
      if (2.0 * p < std::fmin(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol1) ? d : std::copysign(tol1, xm);
    fb = f(b);
    if (opposite_signs(fb, fc) == false && opposite_signs(fb, fa)) {
      c = a;
      fc = fa;
      // reset the step history when the bracket flips
      d = b - a;
      e = d;
    }
  }
  return RootResult{b, fb, opts.max_iterations, false};
}

std::optional<RootResult> bisect(const std::function<double(double)>& f,
                                 double lo, double hi,
                                 const SolveOptions& opts) {
  double fa = f(lo), fb = f(hi);
  if (!opposite_signs(fa, fb)) return std::nullopt;
  if (fa == 0.0) return RootResult{lo, 0.0, 0, true};
  if (fb == 0.0) return RootResult{hi, 0.0, 0, true};
  double a = lo, b = hi;
  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    const double mid = 0.5 * (a + b);
    const double fm = f(mid);
    if (fm == 0.0 || (b - a) * 0.5 < opts.x_tol ||
        (opts.f_tol > 0.0 && std::fabs(fm) <= opts.f_tol)) {
      static obs::Counter& iters = obs::counter("stats.root.bisect_iters");
      iters.add(static_cast<std::uint64_t>(iter));
      return RootResult{mid, fm, iter, true};
    }
    if (opposite_signs(fa, fm)) {
      b = mid;
    } else {
      a = mid;
      fa = fm;
    }
  }
  return RootResult{0.5 * (a + b), f(0.5 * (a + b)), opts.max_iterations, false};
}

RootResult require_converged(const std::optional<RootResult>& root,
                             const char* context) {
  if (!root) {
    throw ScenarioError(ErrorCode::kNoConvergence,
                        std::string(context) +
                            ": no valid bracket for the root search");
  }
  if (!root->converged) {
    throw ScenarioError(ErrorCode::kNoConvergence,
                        std::string(context) + ": root search stopped after " +
                            std::to_string(root->iterations) +
                            " iterations without converging");
  }
  return *root;
}

std::optional<std::pair<double, double>> bracket_upward(
    const std::function<double(double)>& f, double lo, double step,
    int max_iterations) {
  const double f_lo = f(lo);
  double a = lo;
  double b = lo + step;
  for (int i = 0; i < max_iterations; ++i) {
    if (opposite_signs(f_lo, f(b))) return std::make_pair(a, b);
    a = b;
    step *= 2.0;
    b = a + step;
  }
  return std::nullopt;
}

MinimizeResult golden_minimize(const std::function<double(double)>& f,
                               double lo, double hi, double x_tol,
                               int max_iterations) {
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  int iter = 0;
  while (iter < max_iterations && (b - a) > x_tol) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
    ++iter;
  }
  golden_iter_counter().add(static_cast<std::uint64_t>(iter));
  const double x = 0.5 * (a + b);
  return MinimizeResult{x, f(x), iter, (b - a) <= x_tol};
}

MinimizeResult grid_then_golden(const std::function<double(double)>& f,
                                double lo, double hi, int grid_points,
                                double x_tol) {
  if (grid_points < 3) grid_points = 3;
  static obs::Counter& grid_evals = obs::counter("stats.minimize.grid_evals");
  grid_evals.add(static_cast<std::uint64_t>(grid_points));
  const double step = (hi - lo) / static_cast<double>(grid_points - 1);
  double best_x = lo;
  double best_f = std::numeric_limits<double>::infinity();
  for (int i = 0; i < grid_points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    const double fx = f(x);
    if (fx < best_f) {
      best_f = fx;
      best_x = x;
    }
  }
  const double a = std::fmax(lo, best_x - step);
  const double b = std::fmin(hi, best_x + step);
  MinimizeResult refined = golden_minimize(f, a, b, x_tol);
  if (refined.fx <= best_f) return refined;
  return MinimizeResult{best_x, best_f, refined.iterations, true};
}

}  // namespace sre::stats
