#pragma once

// Numerically robust accumulation and sample summaries: Kahan compensated
// summation for the long series in Eq. (4), Welford online moments for the
// Monte-Carlo estimator (Eq. 13), and empirical quantiles for trace analysis.

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace sre::stats {

/// Kahan–Neumaier compensated accumulator. Sums of thousands of terms with
/// widely varying magnitudes appear in the expected-cost series; compensation
/// keeps the result accurate to a few ulps.
class KahanSum {
 public:
  void add(double value) noexcept {
    const double t = sum_ + value;
    if (std::fabs(sum_) >= std::fabs(value)) {
      comp_ += (sum_ - t) + value;
    } else {
      comp_ += (value - t) + sum_;
    }
    sum_ = t;
  }

  [[nodiscard]] double value() const noexcept { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Welford online mean/variance accumulator.
class OnlineMoments {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance (divide by n).
  [[nodiscard]] double variance() const noexcept;
  /// Sample variance (divide by n-1).
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Standard error of the mean (sample stddev / sqrt(n)).
  [[nodiscard]] double standard_error() const noexcept;

  /// Merge another accumulator (parallel reduction; Chan et al.).
  void merge(const OnlineMoments& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical quantile with linear interpolation (type-7, the numpy default).
/// `sorted_samples` must be ascending; p in [0,1].
double empirical_quantile(std::span<const double> sorted_samples, double p);

/// Convenience: sorts a copy and evaluates several quantiles at once.
std::vector<double> empirical_quantiles(std::vector<double> samples,
                                        std::span<const double> probabilities);

}  // namespace sre::stats
