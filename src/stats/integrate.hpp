#pragma once

// Adaptive Simpson quadrature. Used for the default (distribution-agnostic)
// conditional expectation E[X | X > tau], for cross-checking the closed-form
// expected cost of Theorem 1 against a direct integration of Eq. (3) in the
// tests, and by distributions lacking closed-form moments.

#include <cmath>
#include <functional>

namespace sre::stats {

namespace detail {

inline double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

inline double adaptive_simpson_rec(const std::function<double(double)>& f,
                                   double a, double fa, double b, double fb,
                                   double m, double fm, double whole,
                                   double eps, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * eps) {
    return left + right + delta / 15.0;
  }
  return adaptive_simpson_rec(f, a, fa, m, fm, lm, flm, left, 0.5 * eps,
                              depth - 1) +
         adaptive_simpson_rec(f, m, fm, b, fb, rm, frm, right, 0.5 * eps,
                              depth - 1);
}

}  // namespace detail

/// Integrates f over [a, b] with adaptive Simpson to absolute tolerance eps.
inline double integrate(const std::function<double(double)>& f, double a,
                        double b, double eps = 1e-10, int max_depth = 40) {
  if (!(b > a)) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = detail::simpson(a, fa, b, fb, fm);
  return detail::adaptive_simpson_rec(f, a, fa, b, fb, m, fm, whole, eps,
                                      max_depth);
}

}  // namespace sre::stats
