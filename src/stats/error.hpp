#pragma once

// Typed failure taxonomy for scenario execution. A campaign that fans
// thousands of scenarios across a pool needs to distinguish *why* a cell
// failed — a solver domain error is a bug to report, an injected platform
// fault is retryable, a deadline expiry is a capacity decision — so every
// failure funnels into one of five stable classes. The sweep resilience
// layer (sim/sweep.hpp) records these per scenario and aggregates them into
// a SweepFailureReport; the string names below are the wire format used in
// report JSON and obs:: counter names, so they never change spelling.
//
// The type lives in the stats layer (the lowest layer above obs) so that
// stats, dist, sim, core and platform can all throw it without an upward
// include; the enum itself sits in namespace sre because it names a
// repo-wide contract, not a stats detail.

#include <stdexcept>
#include <string>
#include <string_view>

namespace sre {

/// Failure classes, ordered for stable array indexing (kCount sentinels).
enum class ErrorCode {
  kDomainError = 0,   ///< invalid argument / numerical domain violation
  kNoConvergence = 1, ///< iterative solver exhausted its budget
  kTimeout = 2,       ///< per-scenario deadline expired (CancelToken)
  kInjectedFault = 3, ///< deterministic chaos injection (sim::FaultPlan)
  kCancelled = 4,     ///< cooperative cancellation requested
  kOverloaded = 5,    ///< admission control refused the request (srv::)
  kTransport = 6,     ///< wire-level failure (reset, refusal, EOF mid-frame)
};

inline constexpr std::size_t kErrorCodeCount = 7;

/// Stable snake_case wire name ("domain_error", "injected_fault", ...).
[[nodiscard]] std::string_view error_code_name(ErrorCode code) noexcept;

/// True for classes worth retrying: transient, platform-side conditions
/// qualify (kInjectedFault, kOverloaded — the planner service sheds the
/// request *before* spending any solver budget, so backing off and retrying
/// is exactly the intended client response — and kTransport, a connection
/// that died underneath an idempotent query). Deterministic solver failures
/// (domain error, non-convergence) reproduce on retry, and a timed-out or
/// cancelled scenario already consumed its budget. See CONTRIBUTING.md.
[[nodiscard]] bool is_retryable(ErrorCode code) noexcept;

/// The typed exception carried through scenario execution. what() keeps the
/// human-readable detail; code() drives classification, retry policy, and
/// the per-class failure counters.
class ScenarioError : public std::runtime_error {
 public:
  ScenarioError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

}  // namespace sre
