#include "stats/special_functions.hpp"

#include <cmath>
#include <limits>

namespace sre::stats {

double log_gamma(double x) noexcept {
#if defined(__GLIBC__) || defined(__APPLE__)
  // Reentrant variant: std::lgamma stores the sign of Gamma(x) in the
  // process-global `signgam`, which TSan rightly flags when quantile
  // evaluations run on the thread pool.
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kEps = std::numeric_limits<double>::epsilon();
constexpr double kTiny = 1e-300;

// Series expansion of P(a,x), valid and fast for x < a + 1.
double gamma_p_series(double a, double x) noexcept {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Modified Lentz continued fraction for Q(a,x), valid for x >= a + 1.
double gamma_q_cf(double a, double x) noexcept {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

// Continued fraction for the regularized incomplete beta (Lentz).
double inc_beta_cf(double x, double a, double b) noexcept {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 500; ++m) {
    const double dm = static_cast<double>(m);
    const double m2 = 2.0 * dm;
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double norm_cdf(double x) noexcept { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double norm_quantile(double p) noexcept {
  if (!(p > 0.0 && p < 1.0)) {
    if (p == 0.0) return -std::numeric_limits<double>::infinity();
    if (p == 1.0) return std::numeric_limits<double>::infinity();
    return kNaN;
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  const double e = norm_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double erf_inv(double x) noexcept {
  if (!(x > -1.0 && x < 1.0)) {
    if (x == -1.0) return -std::numeric_limits<double>::infinity();
    if (x == 1.0) return std::numeric_limits<double>::infinity();
    return kNaN;
  }
  // erf(z) = 2*Phi(z*sqrt(2)) - 1  =>  erf_inv(x) = Phi^{-1}((x+1)/2)/sqrt(2).
  return norm_quantile(0.5 * (x + 1.0)) / std::sqrt(2.0);
}

double erfc_inv(double x) noexcept {
  if (!(x > 0.0 && x < 2.0)) {
    if (x == 0.0) return std::numeric_limits<double>::infinity();
    if (x == 2.0) return -std::numeric_limits<double>::infinity();
    return kNaN;
  }
  return -norm_quantile(0.5 * x) / std::sqrt(2.0);
}

double gamma_p(double a, double x) noexcept {
  if (!(a > 0.0) || !(x >= 0.0)) return kNaN;
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) noexcept {
  if (!(a > 0.0) || !(x >= 0.0)) return kNaN;
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double upper_inc_gamma(double a, double x) noexcept {
  return gamma_q(a, x) * std::tgamma(a);
}

double gamma_p_inv(double a, double p) noexcept {
  if (!(a > 0.0) || !(p >= 0.0 && p < 1.0)) return kNaN;
  if (p == 0.0) return 0.0;
  // Initial guess (Abramowitz & Stegun 26.4.17 via the normal quantile),
  // then Halley iterations on P(a,x) - p = 0 (Numerical Recipes invgammp).
  const double gln = log_gamma(a);
  const double a1 = a - 1.0;
  double x;
  if (a > 1.0) {
    const double pp = (p < 0.5) ? p : 1.0 - p;
    const double t = std::sqrt(-2.0 * std::log(pp));
    double z = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t;
    if (p < 0.5) z = -z;
    x = std::fmax(1e-3,
                  a * std::pow(1.0 - 1.0 / (9.0 * a) + z / (3.0 * std::sqrt(a)), 3));
  } else {
    const double t = 1.0 - a * (0.253 + a * 0.12);
    if (p < t) {
      x = std::pow(p / t, 1.0 / a);
    } else {
      x = 1.0 - std::log(1.0 - (p - t) / (1.0 - t));
    }
  }
  const double lna1 = (a > 1.0) ? std::log(a1) : 0.0;
  const double afac = (a > 1.0) ? std::exp(a1 * (lna1 - 1.0) - gln) : 0.0;
  for (int j = 0; j < 24; ++j) {
    if (x <= 0.0) return 0.0;
    const double err = gamma_p(a, x) - p;
    double t;
    if (a > 1.0) {
      t = afac * std::exp(-(x - a1) + a1 * (std::log(x) - lna1));
    } else {
      t = std::exp(-x + a1 * std::log(x) - gln);
    }
    const double u = err / t;
    const double dx = u / (1.0 - 0.5 * std::fmin(1.0, u * ((a - 1.0) / x - 1.0)));
    x -= dx;
    if (x <= 0.0) x = 0.5 * (x + dx);
    if (std::fabs(dx) < 1e-12 * x) break;
  }
  return x;
}

double lbeta(double a, double b) noexcept {
  return log_gamma(a) + log_gamma(b) - log_gamma(a + b);
}

double beta_fn(double a, double b) noexcept { return std::exp(lbeta(a, b)); }

double inc_beta(double x, double a, double b) noexcept {
  if (!(a > 0.0) || !(b > 0.0) || !(x >= 0.0 && x <= 1.0)) return kNaN;
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double front =
      std::exp(a * std::log(x) + b * std::log(1.0 - x) - lbeta(a, b));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * inc_beta_cf(x, a, b) / a;
  }
  return 1.0 - std::exp(b * std::log(1.0 - x) + a * std::log(x) - lbeta(b, a)) *
                   inc_beta_cf(1.0 - x, b, a) / b;
}

double inc_beta_unreg(double x, double a, double b) noexcept {
  return inc_beta(x, a, b) * beta_fn(a, b);
}

double inc_beta_inv(double p, double a, double b) noexcept {
  if (!(p >= 0.0 && p <= 1.0)) return kNaN;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  // Initial guess (Numerical Recipes invbetai) followed by Halley iterations.
  double x;
  if (a >= 1.0 && b >= 1.0) {
    const double pp = (p < 0.5) ? p : 1.0 - p;
    const double t = std::sqrt(-2.0 * std::log(pp));
    double w = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t;
    if (p < 0.5) w = -w;
    const double al = (w * w - 3.0) / 6.0;
    const double h = 2.0 / (1.0 / (2.0 * a - 1.0) + 1.0 / (2.0 * b - 1.0));
    const double ww =
        w * std::sqrt(al + h) / h -
        (1.0 / (2.0 * b - 1.0) - 1.0 / (2.0 * a - 1.0)) *
            (al + 5.0 / 6.0 - 2.0 / (3.0 * h));
    x = a / (a + b * std::exp(2.0 * ww));
  } else {
    const double lna = std::log(a / (a + b));
    const double lnb = std::log(b / (a + b));
    const double t = std::exp(a * lna) / a;
    const double u = std::exp(b * lnb) / b;
    const double w = t + u;
    if (p < t / w) {
      x = std::pow(a * w * p, 1.0 / a);
    } else {
      x = 1.0 - std::pow(b * w * (1.0 - p), 1.0 / b);
    }
  }
  const double afac = -lbeta(a, b);
  for (int j = 0; j < 24; ++j) {
    if (x <= 0.0 || x >= 1.0) {
      // Fall back to the midpoint of the violated bound.
      x = (x <= 0.0) ? 1e-16 : 1.0 - 1e-16;
    }
    const double err = inc_beta(x, a, b) - p;
    const double t =
        std::exp((a - 1.0) * std::log(x) + (b - 1.0) * std::log(1.0 - x) + afac);
    const double u = err / t;
    const double dx =
        u / (1.0 - 0.5 * std::fmin(1.0, u * ((a - 1.0) / x - (b - 1.0) / (1.0 - x))));
    x -= dx;
    if (x <= 0.0) x = 0.5 * (x + dx);
    if (x >= 1.0) x = 0.5 * (x + dx + 1.0);
    if (std::fabs(dx) < 1e-12 * x && j > 0) break;
  }
  return x;
}

}  // namespace sre::stats
